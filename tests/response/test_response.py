"""Tests for fair response (the [MP91] generalization)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fairness import STRONG_FAIRNESS, check_fair_termination
from repro.response import (
    ObligationSystem,
    ResponseProperty,
    ResponseViolatedError,
    check_fair_response,
    check_response_measure,
    pending_indices,
    synthesize_response_measure,
    termination_as_response,
)
from repro.ts import ExplicitSystem, explore
from repro.workloads import p2, random_system, request_server


def waits(state):
    return state == "wait"


def idles(state):
    return state == "idle"


SERVED = ResponseProperty(name="served", trigger=waits, response=idles)


class TestObligationProduct:
    def test_pending_bit_evolution(self):
        system = request_server()
        product = ObligationSystem(system, SERVED)
        ((state, pending),) = list(product.initial_states())
        assert state == "idle" and not pending
        posts = dict(product.post(("idle", False)))
        assert posts["request"] == ("wait", True)
        # Granting discharges.
        posts = dict(product.post(("wait", True)))
        assert posts["grant"] == ("idle", False)
        assert posts["work"] == ("wait", True)

    def test_retrigger_after_discharge(self):
        system = request_server()
        product = ObligationSystem(system, SERVED)
        posts = dict(product.post(("idle", False)))
        assert posts["request"][1] is True

    def test_enabled_matches_base(self):
        system = request_server()
        product = ObligationSystem(system, SERVED)
        assert product.enabled(("wait", True)) == system.enabled("wait")


class TestDecision:
    def test_server_satisfies_response_under_fairness(self):
        system = request_server(noise_states=2)
        result = check_fair_response(system, SERVED)
        assert result.holds and result.decisive
        assert result.pending_states > 0

    def test_server_does_not_fairly_terminate(self):
        """Response is strictly more general: the server runs forever
        fairly (request/grant forever), yet every request is served."""
        graph = explore(request_server())
        assert not check_fair_termination(graph).fairly_terminates

    def test_unreachable_response_fails_with_witness(self):
        never = ResponseProperty(
            name="never",
            trigger=waits,
            response=lambda s: s == "nonexistent",
        )
        result = check_fair_response(request_server(), never)
        assert not result.holds
        witness = result.witness
        assert witness is not None
        # The witness is genuinely fair and all-pending.
        product = ObligationSystem(request_server(), never)
        assert STRONG_FAIRNESS.is_fair(
            witness.lasso, product.enabled, product.commands()
        )
        assert all(pending for _s, pending in witness.lasso.cycle_states())

    def test_termination_as_response_matches_fair_termination(self):
        for make in (lambda: p2(4), request_server):
            system = make()
            graph = explore(system)
            terminates = check_fair_termination(graph).fairly_terminates
            prop = termination_as_response(system)
            result = check_fair_response(system, prop)
            assert result.holds == terminates

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_termination_reduction_on_random_systems(self, seed):
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        graph = explore(system)
        terminates = check_fair_termination(graph).fairly_terminates
        result = check_fair_response(system, termination_as_response(system))
        assert result.holds == terminates


class TestResponseMeasures:
    def test_synthesis_verifies_on_server(self):
        system = request_server(noise_states=2)
        product_graph = explore(ObligationSystem(system, SERVED))
        pending = pending_indices(product_graph)
        synthesis = synthesize_response_measure(product_graph, pending)
        result = check_response_measure(
            product_graph, pending, synthesis.assignment()
        )
        assert result.ok
        assert result.transitions_checked > 0
        # The pending region's unfairness hypothesis is the starved grant.
        assert synthesis.regions[0].helpful == "grant"

    def test_discharging_transitions_exempt(self):
        system = request_server()
        product_graph = explore(ObligationSystem(system, SERVED))
        pending = pending_indices(product_graph)
        synthesis = synthesize_response_measure(product_graph, pending)
        result = check_response_measure(
            product_graph, pending, synthesis.assignment()
        )
        # Checked transitions = pending→pending only (the work self-loop).
        internal = [
            t
            for t in product_graph.transitions
            if t.source in set(pending) and t.target in set(pending)
        ]
        assert result.transitions_checked == len(internal)

    def test_violated_property_raises_with_witness(self):
        never = ResponseProperty(
            name="never", trigger=waits, response=lambda s: False
        )
        product_graph = explore(ObligationSystem(request_server(), never))
        pending = pending_indices(product_graph)
        with pytest.raises(ResponseViolatedError) as info:
            synthesize_response_measure(product_graph, pending)
        assert info.value.witness is not None

    def test_bad_measure_rejected(self):
        from repro.measures import TERMINATION, Hypothesis, Stack, StackAssignment
        from repro.wf import NATURALS

        system = request_server()
        product_graph = explore(ObligationSystem(system, SERVED))
        pending = pending_indices(product_graph)
        constant = Stack([Hypothesis(TERMINATION, 0)])
        assignment = StackAssignment(lambda s: constant, NATURALS)
        result = check_response_measure(product_graph, pending, assignment)
        assert not result.ok  # the work self-loop has no active hypothesis

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_synthesis_agrees_with_decision_on_random_systems(self, seed):
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        # Property: states with an even index eventually lead to state 0.
        prop = ResponseProperty(
            name="even-leads-home",
            trigger=lambda s: s % 2 == 0 and s != 0,
            response=lambda s: s == 0,
        )
        product_graph = explore(ObligationSystem(system, prop))
        pending = pending_indices(product_graph)
        decision = check_fair_response(system, prop, product_graph=product_graph)
        if decision.holds:
            synthesis = synthesize_response_measure(product_graph, pending)
            result = check_response_measure(
                product_graph, pending, synthesis.assignment()
            )
            assert result.ok
        else:
            with pytest.raises(ResponseViolatedError):
                synthesize_response_measure(product_graph, pending)
