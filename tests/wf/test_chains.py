"""Tests for descending-chain utilities."""

import pytest

from repro.wf import (
    NATURALS,
    FiniteOrder,
    descend_greedily,
    longest_strict_descent,
    verify_no_descent_cycles,
)


class TestLongestStrictDescent:
    def test_empty(self):
        assert longest_strict_descent(NATURALS, []) == []

    def test_single(self):
        assert longest_strict_descent(NATURALS, [4]) == [4]

    def test_picks_longest_subsequence(self):
        values = [5, 9, 4, 8, 3, 7, 2]
        chain = longest_strict_descent(NATURALS, values)
        assert chain == [5, 4, 3, 2] or chain == [9, 8, 7, 2]
        assert NATURALS.is_descending_chain(chain)

    def test_constant_sequence_has_unit_chains(self):
        assert len(longest_strict_descent(NATURALS, [2, 2, 2])) == 1


class TestDescendGreedily:
    def test_stops_at_minimum(self):
        chain = descend_greedily(
            NATURALS, 5, lambda n: [n - 1] if n > 0 else []
        )
        assert chain == [5, 4, 3, 2, 1, 0]

    def test_ignores_non_descending_successors(self):
        chain = descend_greedily(NATURALS, 3, lambda n: [n + 1])
        assert chain == [3]

    def test_budget_exhaustion_raises(self):
        # A "successor" that cheats by flipping between two values under a
        # bogus order would loop; with naturals we simulate by always
        # offering a smaller value derived from a huge start.
        with pytest.raises(RuntimeError):
            descend_greedily(
                NATURALS, 10**9, lambda n: [n - 1], max_steps=10
            )


class TestVerifyNoDescentCycles:
    def test_passes_on_dag(self):
        order = FiniteOrder([0, 1, 2], [(0, 1), (1, 2)])
        verify_no_descent_cycles(order, [0, 1, 2])

    def test_detects_two_cycle(self):
        order = FiniteOrder([0, 1], [(0, 1), (1, 0)])
        with pytest.raises(AssertionError):
            verify_no_descent_cycles(order, [0, 1])

    def test_detects_self_loop(self):
        order = FiniteOrder([0], [(0, 0)])
        with pytest.raises(AssertionError):
            verify_no_descent_cycles(order, [0])
