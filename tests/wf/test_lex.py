"""Tests for lexicographic orders."""

import pytest
from hypothesis import given, strategies as st

from repro.wf import (
    NATURALS,
    BoundedLengthLexOrder,
    HomogeneousLexOrder,
    LexicographicOrder,
    NotInDomainError,
)

pairs = st.tuples(
    st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8)
)


class TestLexicographicOrder:
    def test_needs_components(self):
        with pytest.raises(ValueError):
            LexicographicOrder([])

    def test_first_component_decides(self):
        order = LexicographicOrder([NATURALS, NATURALS])
        assert order.gt((2, 0), (1, 99))
        assert not order.gt((1, 99), (2, 0))

    def test_tie_falls_through(self):
        order = LexicographicOrder([NATURALS, NATURALS])
        assert order.gt((1, 3), (1, 2))
        assert not order.gt((1, 2), (1, 2))

    def test_wrong_width_rejected(self):
        order = LexicographicOrder([NATURALS, NATURALS])
        with pytest.raises(NotInDomainError):
            order.gt((1, 2, 3), (1, 2))

    @given(pairs, pairs)
    def test_matches_python_tuple_order(self, a, b):
        order = LexicographicOrder([NATURALS, NATURALS])
        assert order.gt(a, b) == (a > b)


class TestHomogeneousLexOrder:
    def test_width_enforced(self):
        order = HomogeneousLexOrder(NATURALS, 3)
        assert order.contains((1, 2, 3))
        assert not order.contains((1, 2))

    def test_positive_width_required(self):
        with pytest.raises(ValueError):
            HomogeneousLexOrder(NATURALS, 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=3, max_size=3),
        st.lists(st.integers(min_value=0, max_value=5), min_size=3, max_size=3),
    )
    def test_matches_tuple_order(self, a, b):
        order = HomogeneousLexOrder(NATURALS, 3)
        assert order.gt(tuple(a), tuple(b)) == (tuple(a) > tuple(b))


class TestBoundedLengthLexOrder:
    def test_length_bound(self):
        order = BoundedLengthLexOrder(NATURALS, 2)
        assert order.contains((1,))
        assert order.contains(())
        assert not order.contains((1, 2, 3))

    def test_proper_prefix_is_smaller(self):
        order = BoundedLengthLexOrder(NATURALS, 3)
        assert order.gt((1, 2), (1,))
        assert not order.gt((1,), (1, 2))

    def test_content_beats_length(self):
        order = BoundedLengthLexOrder(NATURALS, 3)
        assert order.gt((2,), (1, 9, 9))

    @given(
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
    )
    def test_transitive(self, a, b, c):
        order = BoundedLengthLexOrder(NATURALS, 3)
        a, b, c = tuple(a), tuple(b), tuple(c)
        if order.gt(a, b) and order.gt(b, c):
            assert order.gt(a, c)

    @given(
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
    )
    def test_total_on_distinct(self, a, b):
        order = BoundedLengthLexOrder(NATURALS, 3)
        a, b = tuple(a), tuple(b)
        if a != b:
            assert order.gt(a, b) != order.gt(b, a)
