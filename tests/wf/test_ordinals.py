"""Unit and property tests for CNF ordinals below ε₀."""

import pytest
from hypothesis import given, strategies as st

from repro.wf import OMEGA, ONE, ORDINALS, ZERO, Ordinal, omega_power, ordinal


# A strategy for smallish ordinals: ω^e·c sums with e itself possibly ω-level.
@st.composite
def ordinals(draw, depth=2):
    if depth == 0:
        return ordinal(draw(st.integers(min_value=0, max_value=5)))
    n_terms = draw(st.integers(min_value=0, max_value=3))
    result = ordinal(0)
    exponents = set()
    for _ in range(n_terms):
        e = draw(ordinals(depth=depth - 1))
        if e in exponents:
            continue
        exponents.add(e)
        c = draw(st.integers(min_value=1, max_value=4))
        result = result.natural_sum(omega_power(e, c))
    return result


class TestConstruction:
    def test_zero_is_empty(self):
        assert ZERO.is_zero()
        assert ZERO.is_finite()
        assert ZERO.to_int() == 0

    def test_finite_round_trip(self):
        assert ordinal(7).to_int() == 7

    def test_ordinal_rejects_negative(self):
        with pytest.raises(ValueError):
            ordinal(-1)

    def test_ordinal_rejects_bool(self):
        with pytest.raises(ValueError):
            ordinal(True)

    def test_cnf_exponents_must_decrease(self):
        with pytest.raises(ValueError):
            Ordinal(((ZERO, 1), (ONE, 1)))

    def test_cnf_coefficients_positive(self):
        with pytest.raises(ValueError):
            Ordinal(((ZERO, 0),))

    def test_omega_is_limit(self):
        assert OMEGA.is_limit()
        assert not OMEGA.is_finite()

    def test_successor_detection(self):
        assert (OMEGA + 1).is_successor()
        assert not (OMEGA + 1).is_limit()

    def test_to_int_of_infinite_raises(self):
        with pytest.raises(ValueError):
            OMEGA.to_int()


class TestComparison:
    def test_finite_ordering_matches_ints(self):
        assert ordinal(2) < ordinal(3)
        assert ordinal(3) == 3

    def test_omega_above_all_finite(self):
        assert ordinal(10**6) < OMEGA

    def test_omega_tower(self):
        assert OMEGA < omega_power(OMEGA)
        assert omega_power(2) < omega_power(3)
        assert OMEGA * 2 < omega_power(2)

    def test_lexicographic_on_cnf(self):
        a = omega_power(2) + OMEGA * 3 + 1
        b = omega_power(2) + OMEGA * 4
        assert a < b

    @given(ordinals(), ordinals())
    def test_trichotomy(self, a, b):
        assert (a < b) + (a == b) + (b < a) == 1

    @given(ordinals(), ordinals(), ordinals())
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(ordinals())
    def test_hash_consistent_with_eq(self, a):
        clone = Ordinal(a.terms)
        assert clone == a
        assert hash(clone) == hash(a)


class TestArithmetic:
    def test_left_absorption(self):
        assert 1 + OMEGA == OMEGA
        assert ordinal(5) + OMEGA == OMEGA

    def test_right_addition_grows(self):
        assert OMEGA < OMEGA + 1

    def test_addition_merges_equal_degree(self):
        assert OMEGA + OMEGA == OMEGA * 2

    def test_multiplication_left_absorption(self):
        assert 2 * OMEGA == OMEGA

    def test_multiplication_right_growth(self):
        assert OMEGA * 2 == OMEGA + OMEGA
        assert OMEGA < OMEGA * 2

    def test_multiplication_omega_omega(self):
        assert OMEGA * OMEGA == omega_power(2)

    def test_mul_zero(self):
        assert OMEGA * ZERO == ZERO
        assert ZERO * OMEGA == ZERO

    @given(ordinals(), ordinals())
    def test_addition_monotone_right(self, a, b):
        if b > ZERO:
            assert a < a + b

    @given(ordinals(), ordinals(), ordinals())
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(ordinals(), ordinals())
    def test_natural_sum_commutative(self, a, b):
        assert a.natural_sum(b) == b.natural_sum(a)

    @given(ordinals(), ordinals())
    def test_natural_sum_dominates_plain(self, a, b):
        # The Hessenberg sum never loses terms, so it is ≥ ordinal sum.
        assert not (a.natural_sum(b) < a + b)

    @given(ordinals())
    def test_add_zero_identity(self, a):
        assert a + ZERO == a
        assert ZERO + a == a


class TestOrderInterface:
    def test_contains_only_ordinals(self):
        assert ORDINALS.contains(OMEGA)
        assert not ORDINALS.contains(3)

    def test_gt(self):
        assert ORDINALS.gt(OMEGA, ordinal(5))

    def test_rendering(self):
        assert str(ZERO) == "0"
        assert str(OMEGA) == "ω"
        assert "ω^2" in str(omega_power(2) + 1)
        assert str(OMEGA * 3) == "ω·3"
