"""Tests for componentwise product orders."""

import pytest
from hypothesis import given, strategies as st

from repro.wf import NATURALS, PointwiseProduct, StrictProduct

pair = st.tuples(
    st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
)


class TestPointwiseProduct:
    def setup_method(self):
        self.order = PointwiseProduct([NATURALS, NATURALS])

    def test_needs_components(self):
        with pytest.raises(ValueError):
            PointwiseProduct([])

    def test_strict_in_one_weak_in_other(self):
        assert self.order.gt((2, 3), (1, 3))
        assert self.order.gt((2, 3), (2, 2))

    def test_incomparable_when_mixed(self):
        assert not self.order.gt((2, 1), (1, 2))
        assert not self.order.gt((1, 2), (2, 1))

    def test_equal_not_greater(self):
        assert not self.order.gt((1, 1), (1, 1))

    @given(pair, pair)
    def test_agrees_with_componentwise_definition(self, a, b):
        expected = all(x >= y for x, y in zip(a, b)) and a != b
        assert self.order.gt(a, b) == expected

    @given(pair, pair, pair)
    def test_transitive(self, a, b, c):
        if self.order.gt(a, b) and self.order.gt(b, c):
            assert self.order.gt(a, c)


class TestStrictProduct:
    def setup_method(self):
        self.order = StrictProduct([NATURALS, NATURALS])

    def test_requires_descent_everywhere(self):
        assert self.order.gt((2, 3), (1, 2))
        assert not self.order.gt((2, 3), (1, 3))

    @given(pair, pair)
    def test_coarser_than_pointwise(self, a, b):
        pointwise = PointwiseProduct([NATURALS, NATURALS])
        if self.order.gt(a, b):
            assert pointwise.gt(a, b)
