"""Unit tests for the natural-number orders."""

import pytest

from repro.wf import NATURALS, BoundedNaturals, NotInDomainError


class TestNaturals:
    def test_contains_non_negative_ints(self):
        assert NATURALS.contains(0)
        assert NATURALS.contains(10**9)

    def test_rejects_negative(self):
        assert not NATURALS.contains(-1)

    def test_rejects_bool(self):
        assert not NATURALS.contains(True)

    def test_rejects_non_int(self):
        assert not NATURALS.contains(1.5)
        assert not NATURALS.contains("3")

    def test_gt(self):
        assert NATURALS.gt(3, 2)
        assert not NATURALS.gt(2, 3)
        assert not NATURALS.gt(2, 2)

    def test_ge(self):
        assert NATURALS.ge(2, 2)
        assert NATURALS.ge(3, 2)
        assert not NATURALS.ge(2, 3)

    def test_gt_outside_domain_raises(self):
        with pytest.raises(NotInDomainError):
            NATURALS.gt(-1, 0)
        with pytest.raises(NotInDomainError):
            NATURALS.gt(0, -1)

    def test_is_well_founded(self):
        assert NATURALS.is_well_founded()

    def test_max_min(self):
        assert NATURALS.max_of([3, 1, 2]) == 3
        assert NATURALS.min_of([3, 1, 2]) == 1

    def test_max_of_empty_raises(self):
        with pytest.raises(ValueError):
            NATURALS.max_of([])

    def test_descending_chain_detection(self):
        assert NATURALS.is_descending_chain([5, 3, 2, 0])
        assert not NATURALS.is_descending_chain([5, 5, 2])
        assert not NATURALS.is_descending_chain([2, 3])

    def test_describe_mentions_naturals(self):
        assert "ℕ" in NATURALS.describe()


class TestBoundedNaturals:
    def test_membership_window(self):
        order = BoundedNaturals(117)
        assert order.contains(0)
        assert order.contains(116)
        assert not order.contains(117)
        assert not order.contains(-1)

    def test_gt_inside_window(self):
        order = BoundedNaturals(5)
        assert order.gt(4, 0)
        assert not order.gt(0, 4)

    def test_gt_escaping_value_raises(self):
        order = BoundedNaturals(5)
        with pytest.raises(NotInDomainError):
            order.gt(5, 1)

    def test_zero_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedNaturals(0)

    def test_equality_by_bound(self):
        assert BoundedNaturals(4) == BoundedNaturals(4)
        assert BoundedNaturals(4) != BoundedNaturals(5)
        assert hash(BoundedNaturals(4)) == hash(BoundedNaturals(4))
