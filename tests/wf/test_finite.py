"""Tests for explicit finite relations and the well-foundedness audit."""

import pytest
from hypothesis import given, strategies as st

from repro.wf import FiniteOrder, GrowableRelation


class TestGrowableRelation:
    def test_new_allocates_sequentially(self):
        relation = GrowableRelation()
        assert relation.new() == 0
        assert relation.new() == 1
        assert relation.size == 2

    def test_descent_records_edge(self):
        relation = GrowableRelation()
        a, b = relation.new(), relation.new()
        relation.add_descent(a, b)
        assert (a, b) in relation.edges

    def test_descent_requires_allocation(self):
        relation = GrowableRelation()
        relation.new()
        with pytest.raises(ValueError):
            relation.add_descent(0, 5)

    def test_freeze_produces_finite_order(self):
        relation = GrowableRelation()
        a, b, c = relation.new(), relation.new(), relation.new()
        relation.add_descent(a, b)
        relation.add_descent(b, c)
        order = relation.freeze()
        assert order.gt(a, c)  # transitivity through b
        assert order.is_well_founded()


class TestFiniteOrder:
    def test_gt_is_reachability(self):
        order = FiniteOrder([1, 2, 3, 4], [(1, 2), (2, 3)])
        assert order.gt(1, 3)
        assert not order.gt(3, 1)
        assert not order.gt(1, 4)

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError):
            FiniteOrder([1], [(1, 2)])

    def test_cycle_detection(self):
        order = FiniteOrder([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        assert not order.is_well_founded()
        cycle = order.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # Every consecutive pair is a real edge.
        edges = {(1, 2), (2, 3), (3, 1)}
        assert all((a, b) in edges for a, b in zip(cycle, cycle[1:]))

    def test_self_loop_is_a_cycle(self):
        order = FiniteOrder(["w"], [("w", "w")])
        assert not order.is_well_founded()

    def test_acyclic_has_no_cycle(self):
        order = FiniteOrder(range(5), [(i, i + 1) for i in range(4)])
        assert order.find_cycle() is None

    def test_longest_descent(self):
        order = FiniteOrder(range(5), [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        assert order.longest_descent_from(0) == 3  # 0 → 3 → 4 → 2
        assert order.longest_descent_from(2) == 0

    def test_longest_descent_on_cycle_raises(self):
        order = FiniteOrder([0, 1], [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            order.longest_descent_from(0)

    def test_edge_count(self):
        order = FiniteOrder([0, 1, 2], [(0, 1), (0, 2)])
        assert order.edge_count == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=15,
        )
    )
    def test_well_foundedness_equals_acyclicity(self, edges):
        order = FiniteOrder(range(7), edges)
        has_cycle = order.find_cycle() is not None
        assert order.is_well_founded() == (not has_cycle)
        # gt is irreflexive exactly on well-founded orders restricted to
        # elements not on cycles; globally: some x with gt(x, x) iff cycle.
        reflexive = any(order.gt(x, x) for x in range(7))
        assert reflexive == has_cycle

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=12,
        )
    )
    def test_gt_transitive(self, edges):
        order = FiniteOrder(range(6), edges)
        for a in range(6):
            for b in range(6):
                for c in range(6):
                    if order.gt(a, b) and order.gt(b, c):
                        assert order.gt(a, c)
