"""Tests for multisets and the Dershowitz–Manna extension."""

import pytest
from hypothesis import given, strategies as st

from repro.wf import NATURALS, Multiset, MultisetExtension

small_multisets = st.lists(
    st.integers(min_value=0, max_value=4), max_size=5
).map(Multiset)


class TestMultiset:
    def test_counts(self):
        m = Multiset([1, 1, 2])
        assert m.count(1) == 2
        assert m.count(2) == 1
        assert m.count(9) == 0
        assert len(m) == 3

    def test_from_mapping(self):
        m = Multiset({1: 2, 2: 0})
        assert m.count(1) == 2
        assert 2 not in m.elements()

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Multiset({1: -1})

    def test_equality_ignores_insertion_order(self):
        assert Multiset([1, 2, 1]) == Multiset([2, 1, 1])
        assert hash(Multiset([1, 2])) == hash(Multiset([2, 1]))

    def test_union_and_difference(self):
        a, b = Multiset([1, 1, 2]), Multiset([1, 3])
        assert a.union(b) == Multiset([1, 1, 1, 2, 3])
        assert a.difference(b) == Multiset([1, 2])
        assert b.difference(a) == Multiset([3])

    def test_iteration_respects_multiplicity(self):
        assert sorted(Multiset([2, 2, 5])) == [2, 2, 5]


class TestDershowitzManna:
    def setup_method(self):
        self.order = MultisetExtension(NATURALS)

    def test_removing_decreases(self):
        assert self.order.gt(Multiset([3, 1]), Multiset([1]))

    def test_replace_big_by_smaller_copies(self):
        assert self.order.gt(Multiset([3]), Multiset([2, 2, 2, 2]))

    def test_adding_bigger_does_not_decrease(self):
        assert not self.order.gt(Multiset([1]), Multiset([1, 3]))

    def test_equal_not_greater(self):
        assert not self.order.gt(Multiset([1, 2]), Multiset([2, 1]))

    def test_empty_is_minimum(self):
        assert self.order.gt(Multiset([0]), Multiset([]))
        assert not self.order.gt(Multiset([]), Multiset([0]))

    def test_incomparable_swap(self):
        # {2} vs {1, 1, 1}: 2 > 1 so replacing 2 by three 1s decreases.
        assert self.order.gt(Multiset([2]), Multiset([1, 1, 1]))
        assert not self.order.gt(Multiset([1, 1, 1]), Multiset([2]))

    @given(small_multisets, small_multisets)
    def test_antisymmetric(self, a, b):
        assert not (self.order.gt(a, b) and self.order.gt(b, a))

    @given(small_multisets, small_multisets, small_multisets)
    def test_transitive(self, a, b, c):
        if self.order.gt(a, b) and self.order.gt(b, c):
            assert self.order.gt(a, c)

    @given(small_multisets, small_multisets)
    def test_union_monotone(self, a, extra):
        if len(extra) > 0:
            assert self.order.gt(a.union(extra), a)
