"""Adaptive dispatch and the persistent pool.

The CI guard behind "``--jobs N`` is never slower than serial": parallel
requests below :data:`~repro.engine.parallel.PARALLEL_WORK_CUTOFF` must
be demoted to serial, the demotion must be overridable for tests, and the
worker pool must be created once and reused.
"""

import os

import pytest

import repro.engine.parallel as parallel
from repro.engine import (
    PARALLEL_WORK_CUTOFF,
    effective_jobs,
    get_pool,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
)


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


@pytest.fixture
def no_force(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)


class TestEffectiveJobs:
    def test_serial_requests_stay_serial(self, no_force):
        assert effective_jobs(None, 10**9) == 1
        assert effective_jobs(0, 10**9) == 1
        assert effective_jobs(1, 10**9) == 1

    def test_small_work_is_demoted_to_serial(self, no_force):
        """The guard: below the cutoff, ``--jobs N`` never reaches the pool."""
        assert effective_jobs(4, 0) == 1
        assert effective_jobs(4, PARALLEL_WORK_CUTOFF - 1) == 1
        assert effective_jobs(8, 100) == 1

    def test_large_work_keeps_requested_jobs_on_multicore(
        self, no_force, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert effective_jobs(4, PARALLEL_WORK_CUTOFF) == 4
        assert effective_jobs(4, PARALLEL_WORK_CUTOFF * 10) == 4

    def test_single_core_always_demotes(self, no_force, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert effective_jobs(4, PARALLEL_WORK_CUTOFF * 10) == 1

    def test_force_env_skips_demotion(self, force_parallel):
        assert effective_jobs(4, 1) == 4

    def test_negative_means_all_cores(self, no_force, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert resolve_jobs(-1) == 6
        assert effective_jobs(-1, PARALLEL_WORK_CUTOFF) == 6


def _square(x):
    return x * x


class TestPersistentPool:
    def test_pool_is_reused_across_maps(self):
        shutdown_pool()
        try:
            first = get_pool(2)
            if first is None:
                pytest.skip("process pool unavailable in this sandbox")
            assert get_pool(2) is first
            assert get_pool(1) is first  # smaller requests reuse it too
            items = list(range(20))
            expected = [_square(i) for i in items]
            assert parallel_map(_square, items, n_jobs=2) == expected
            assert get_pool(2) is first  # the map did not replace the pool
        finally:
            shutdown_pool()

    def test_growth_replaces_pool(self):
        shutdown_pool()
        try:
            small = get_pool(1)
            if small is None:
                pytest.skip("process pool unavailable in this sandbox")
            grown = get_pool(2)
            assert grown is not None
            assert grown is not small
            assert get_pool(2) is grown
        finally:
            shutdown_pool()

    def test_shutdown_is_idempotent(self):
        shutdown_pool()
        shutdown_pool()
        assert parallel._pool is None

    def test_serial_map_never_touches_pool(self):
        shutdown_pool()
        assert parallel_map(_square, list(range(5)), n_jobs=1) == [
            0, 1, 4, 9, 16,
        ]
        assert parallel._pool is None


class TestParallelMapDeterminism:
    @pytest.mark.parametrize("n_jobs", [None, 1, 2, 4])
    def test_order_preserved(self, n_jobs):
        items = list(range(37))
        assert parallel_map(_square, items, n_jobs=n_jobs) == [
            _square(i) for i in items
        ]
