"""The engine never changes verdicts: equivalence against the seed oracle.

Two independent equalities, checked per workload family:

* **engine == reference** — the indexed fast paths (cached analyses,
  masks, packed CSR recursion) produce the same decomposition, fair-cycle
  witnesses, synthesised stacks and verification results as the seed
  implementations preserved in :mod:`repro.engine.reference`;
* **parallel == serial** — ``n_jobs=2`` produces results identical to
  ``n_jobs=1``, including the order of witness and violation lists.
"""

import pytest

from repro.completeness.synthesis import (
    NotFairlyTerminatingError,
    synthesize_measure,
)
from repro.engine.reference import (
    check_measure_reference,
    decompose_reference,
    find_fair_cycle_reference,
    synthesize_measure_reference,
)
from repro.fairness.checker import find_fair_cycle
from repro.measures.verification import check_measure
from repro.ts.explore import explore
from repro.ts.graph import decompose
from repro.workloads import engine_scaling_suite

FAMILIES = engine_scaling_suite("smoke")


@pytest.fixture(scope="module", params=FAMILIES, ids=[n for n, _ in FAMILIES])
def graph(request):
    _, make = request.param
    return explore(make())


def _flatten_regions(regions):
    out = []

    def visit(region):
        out.append(
            (region.level, region.helpful, region.states, region.enabled_here)
        )
        for child in region.children:
            visit(child)

    for region in regions:
        visit(region)
    return out


def _witness_key(witness):
    """Comparison key covering both FairCycle and GeneralFairCycle."""
    if witness is None:
        return None
    return (
        witness.lasso.describe(),
        witness.region,
        getattr(witness, "enabled_on_cycle", None),
        getattr(witness, "executed_on_cycle", None),
    )


def _check_key(result):
    return (
        [
            (w.transition, w.level, w.subject, w.reason)
            for w in result.witnesses
        ],
        list(result.violations),
        result.transitions_checked,
        result.ok,
    )


def _synthesize_outcome(graph, n_jobs=None):
    try:
        result = synthesize_measure(graph, n_jobs=n_jobs)
    except NotFairlyTerminatingError as error:
        return ("unfair", _witness_key(error.witness))
    return ("ok", result.stacks, _flatten_regions(result.regions), result)


class TestEngineMatchesReference:
    def test_decomposition(self, graph):
        engine = decompose(graph)
        reference = decompose_reference(graph)
        assert engine.components == reference.components
        assert engine.component_of == reference.component_of

    def test_restricted_decomposition(self, graph):
        region = list(range(0, len(graph), 2))
        engine = decompose(graph, restrict_to=region)
        reference = decompose_reference(graph, restrict_to=region)
        assert engine.components == reference.components

    def test_fair_cycle(self, graph):
        assert _witness_key(find_fair_cycle(graph)) == _witness_key(
            find_fair_cycle_reference(graph)
        )

    def test_synthesis_and_verification(self, graph):
        outcome = _synthesize_outcome(graph)
        try:
            reference = synthesize_measure_reference(graph)
        except NotFairlyTerminatingError as error:
            assert outcome == ("unfair", _witness_key(error.witness))
            return
        assert outcome[0] == "ok"
        assert outcome[1] == reference.stacks
        assert outcome[2] == _flatten_regions(reference.regions)
        assignment = reference.assignment()
        assert _check_key(check_measure(graph, assignment)) == _check_key(
            check_measure_reference(graph, assignment)
        )


class TestParallelMatchesSerial:
    def test_synthesis(self, graph):
        serial = _synthesize_outcome(graph, n_jobs=1)
        parallel = _synthesize_outcome(graph, n_jobs=2)
        assert serial[0] == parallel[0]
        if serial[0] == "ok":
            assert serial[1] == parallel[1]
            assert serial[2] == parallel[2]
        else:
            assert serial == parallel

    def test_verification(self, graph):
        outcome = _synthesize_outcome(graph)
        if outcome[0] != "ok":
            pytest.skip("no measure exists for this family")
        assignment = outcome[3].assignment()
        assert _check_key(
            check_measure(graph, assignment, n_jobs=2)
        ) == _check_key(check_measure(graph, assignment, n_jobs=1))

    def test_verification_of_wrong_measure_reports_same_violations(self, graph):
        outcome = _synthesize_outcome(graph)
        if outcome[0] != "ok":
            pytest.skip("no measure exists for this family")
        # Truncate every stack to its base hypothesis: violations appear in
        # non-trivial families, and their order must survive the fan-out.
        from repro.measures.assignment import StackAssignment
        from repro.measures.stack import Stack
        from repro.wf.naturals import NATURALS

        broken = StackAssignment.from_dict(
            {
                graph.state_of(index): Stack(list(stack)[:1])
                for index, stack in outcome[3].stacks.items()
            },
            NATURALS,
            description="deliberately truncated measure",
        )
        serial = check_measure(graph, broken, n_jobs=1)
        parallel = check_measure(graph, broken, n_jobs=2)
        assert _check_key(serial) == _check_key(parallel)
