"""The shared-memory data plane (DESIGN §6f).

Two contracts under test.  **Correctness**: columns published through
:class:`~repro.engine.shm.ShmArena` read back exactly, survive capacity
growth (a new generation segment), and refuse mismatched tags or
under-published lengths loudly.  **Lifecycle** (the leak contract):
``/dev/shm`` holds no ``repro-shm*`` segment after a normal exploration,
after an exploration aborted by an exception or ``StopExploration``, or
after a worker process dies mid-attach — only the owning coordinator
ever unlinks.

The value-plane differential tests pin the end-to-end claim: the
shared-memory wire format, the pickled wire format and the serial
explorer produce bit-identical graphs.
"""

import os
import pathlib

import pytest

from repro.engine import shm
from repro.engine.shard import graph_digest, value_plane_of
from repro.telemetry import core as telemetry
from repro.ts import StopExploration, ExplorationObserver, explore
from repro.workloads import counter_grid, dining_philosophers

pytestmark = pytest.mark.skipif(
    shm.shared_memory is None, reason="multiprocessing.shared_memory missing"
)


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


def shm_dir_segments():
    """``repro-shm*`` names currently present in ``/dev/shm``."""
    try:
        return sorted(
            p.name
            for p in pathlib.Path("/dev/shm").glob(f"{shm.SEGMENT_PREFIX}*")
        )
    except OSError:  # pragma: no cover - no tmpfs
        return []


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave /dev/shm as it found it."""
    before = shm_dir_segments()
    yield
    shm.detach_all()
    assert shm_dir_segments() == before
    assert shm.live_segment_names() == []


class TestShmColumn:
    def test_roundtrip(self):
        with shm.ShmArena(b"roundtrip") as arena:
            column = arena.column("src")
            column.sync([3, 1, 4, 1, 5])
            view = shm.attach_column(column.name, arena.tag, 5)
            base = shm.HEADER_WORDS
            assert list(view[base:base + 5]) == [3, 1, 4, 1, 5]
            assert view[0] == 5  # published length
        shm.detach_all()

    def test_sync_is_append_only(self):
        with shm.ShmArena(b"append") as arena:
            column = arena.column("dst")
            assert column.sync([1, 2]) == 2 * 8
            # Republishing a prefix is free; only the suffix moves.
            assert column.sync([1, 2]) == 0
            assert column.sync([1, 2, 3, 4]) == 2 * 8
            view = shm.attach_column(column.name, arena.tag, 4)
            base = shm.HEADER_WORDS
            assert list(view[base:base + 4]) == [1, 2, 3, 4]
        shm.detach_all()

    def test_sync_length_caps_publication(self):
        with shm.ShmArena(b"cap") as arena:
            column = arena.column("emask")
            column.sync([7, 8, 9, 10], length=2)
            assert column.length == 2
            view = shm.attach_column(column.name, arena.tag, 2)
            assert view[0] == 2
            # The unpublished tail is not promised to the reader.
            with pytest.raises(shm.ShmUnavailable):
                shm.attach_column(column.name, arena.tag, 4)
        shm.detach_all()

    def test_growth_allocates_new_generation(self):
        with shm.ShmArena(b"growth") as arena:
            column = arena.column("values", capacity=4)
            first_name = column.name
            column.sync(list(range(4)))
            column.sync(list(range(4)) + [99] * (shm.MIN_CAPACITY + 4))
            assert column.name != first_name
            assert column.name.rsplit(".g", 1)[0] == (
                first_name.rsplit(".g", 1)[0]
            )
            # The pre-growth prefix survived the copy.
            view = shm.attach_column(column.name, arena.tag, column.length)
            base = shm.HEADER_WORDS
            assert list(view[base:base + 4]) == [0, 1, 2, 3]
            assert view[base + 4] == 99
            # The old generation's name is gone from the filesystem.
            assert first_name not in shm_dir_segments()
        shm.detach_all()

    def test_attach_remaps_grown_column(self):
        telemetry.reset()
        telemetry.enable()
        try:
            with shm.ShmArena(b"remap") as arena:
                column = arena.column("values", capacity=4)
                column.sync([1, 2, 3])
                shm.attach_column(column.name, arena.tag, 3)
                column.sync([1, 2, 3] + [0] * (shm.MIN_CAPACITY + 2))
                view = shm.attach_column(column.name, arena.tag, 3)
                assert list(view[shm.HEADER_WORDS:shm.HEADER_WORDS + 3]) == [1, 2, 3]
            counters = telemetry.registry().snapshot()["counters"]
            assert counters.get("shm.remaps") == 1
            assert counters.get("shm.attaches", 0) >= 2
        finally:
            telemetry.disable()
            shm.detach_all()

    def test_tag_mismatch_rejected(self):
        with shm.ShmArena(b"tagged") as arena:
            column = arena.column("src")
            column.sync([1])
            with pytest.raises(shm.ShmUnavailable):
                shm.attach_column(column.name, arena.tag ^ 1, 1)
        shm.detach_all()

    def test_attach_unknown_segment_rejected(self):
        with pytest.raises(shm.ShmUnavailable):
            shm.attach_column(f"{shm.SEGMENT_PREFIX}-nonexistent.src.g0", 0, 1)


class TestShmArena:
    def test_close_is_idempotent_and_unlinks(self):
        arena = shm.ShmArena(b"close")
        name = arena.column("src").name
        arena.sync("src", [1, 2, 3])
        assert name in shm_dir_segments()
        arena.close()
        assert name not in shm_dir_segments()
        arena.close()  # second close is a no-op
        with pytest.raises(shm.ShmUnavailable):
            arena.column("dst")

    def test_manifest_lists_published_columns(self):
        with shm.ShmArena(b"manifest") as arena:
            arena.sync("src", [1, 2])
            arena.sync("dst", [3])
            manifest = arena.manifest()
            assert set(manifest) == {"src", "dst"}
            assert manifest["src"][1] == 2
            assert manifest["dst"][1] == 1
            for key, (name, _length) in manifest.items():
                assert name.startswith(shm.SEGMENT_PREFIX)
                assert f".{key}.g" in name

    def test_exception_inside_with_still_unlinks(self):
        with pytest.raises(RuntimeError):
            with shm.ShmArena(b"exc") as arena:
                arena.sync("src", [1, 2, 3])
                raise RuntimeError("mid-round failure")
        assert arena.closed

    def test_distinct_arenas_have_distinct_tags(self):
        with shm.ShmArena(b"same-seed") as a, shm.ShmArena(b"same-seed") as b:
            assert a.tag != b.tag  # prefix (pid+seq) feeds the tag
            assert a.prefix != b.prefix


class TestWorkerDeath:
    def test_dead_worker_leaks_and_kills_nothing(self):
        """A worker that attaches and then dies hard must neither unlink
        the owner's segment (bpo-39959: tracked attachments would) nor
        leave anything of its own behind."""
        with shm.ShmArena(b"death") as arena:
            column = arena.column("src")
            column.sync([42, 43])
            name, tag = column.name, arena.tag
            pid = os.fork()
            if pid == 0:  # worker: attach, then die without cleanup
                try:
                    view = shm.attach_column(name, tag, 2)
                    ok = view[shm.HEADER_WORDS] == 42
                finally:
                    os._exit(0 if ok else 9)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # The owner's segment survived the worker's death intact.
            view = shm.attach_column(name, tag, 2)
            assert view[shm.HEADER_WORDS + 1] == 43
        shm.detach_all()


class _Boom(ExplorationObserver):
    def __init__(self, limit):
        self.limit = limit
        self.seen = 0

    def on_state(self, index, state, depth):
        self.seen += 1
        if self.seen >= self.limit:
            raise StopExploration(f"saw {self.seen}")


class TestExplorationLeakContract:
    def test_normal_exit_leaves_no_segments(self, force_parallel):
        graph = explore(counter_grid(12, 12), n_jobs=2)
        assert len(graph) == 169
        # autouse fixture asserts /dev/shm is clean

    def test_stop_exploration_leaves_no_segments(self, force_parallel):
        explore(counter_grid(12, 12), n_jobs=2, observer=_Boom(40))

    def test_observer_exception_leaves_no_segments(self, force_parallel):
        class Hostile(ExplorationObserver):
            def on_expanded(self, index, enabled):
                if index > 30:
                    raise ValueError("observer bug")

        with pytest.raises(ValueError):
            explore(counter_grid(12, 12), n_jobs=2, observer=Hostile())


class TestValuePlaneDifferential:
    def test_three_wire_formats_agree(self, force_parallel, monkeypatch):
        serial = graph_digest(explore(counter_grid(12, 12)))
        plane = graph_digest(explore(counter_grid(12, 12), n_jobs=2))
        monkeypatch.setenv("REPRO_VALUE_PLANE", "0")
        pickled = graph_digest(explore(counter_grid(12, 12), n_jobs=2))
        assert serial == plane == pickled

    def test_value_plane_env_kill_switch(self, monkeypatch):
        system = counter_grid(3, 3)
        assert value_plane_of(system) is not None
        monkeypatch.setenv("REPRO_VALUE_PLANE", "0")
        assert value_plane_of(system) is None

    def test_values_rounds_counted(self, force_parallel):
        telemetry.reset()
        telemetry.enable()
        try:
            explore(counter_grid(12, 12), n_jobs=2)
            counters = telemetry.registry().snapshot()["counters"]
            assert counters.get("shard.values_rounds", 0) > 0
            assert counters.get("batch.calls", 0) > 0
            assert counters.get("batch.rows", 0) >= counters["batch.calls"]
        finally:
            telemetry.disable()

    def test_composed_system_has_no_plane_and_still_agrees(
        self, force_parallel
    ):
        # dining_philosophers composes ExplicitSystems — no value plane —
        # so the legacy pickled path must carry it, bit-identically.
        system = dining_philosophers(3)
        assert value_plane_of(system) is None
        serial = graph_digest(explore(dining_philosophers(3)))
        sharded = graph_digest(explore(dining_philosophers(3), n_jobs=2))
        assert serial == sharded
