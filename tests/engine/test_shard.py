"""Differential tests for sharded exploration (DESIGN §6d).

The whole point of the sharded explorer is that it is *invisible*: for
every workload family, every job count and every truncation mode, the
graph it produces must be bit-identical to the serial explorer's — same
state interning order, same transition order, same enabled sets, same
frontier, same strict-mode error message.  These tests force the pool on
(``REPRO_FORCE_PARALLEL=1``) so the parallel merge path actually runs
even on single-core CI machines and below the per-round cutoff.
"""

import pickle

import pytest

from repro.engine.shard import (
    SHARD_ROUND_CUTOFF,
    _round_workers,
    graph_digest,
)
from repro.gcl import Program
from repro.gcl.compile import CompiledProgram
from repro.ts import ExplorationLimitError, explore
from repro.ts.system import TransitionSystem
from repro.workloads import (
    counter_grid,
    dining_philosophers,
    engine_scaling_suite,
    large_scaling_suite,
)

JOB_COUNTS = (2, 4)


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


def _families():
    """Every smoke-scale family from both suites, deduplicated by name."""
    seen = {}
    for name, make in engine_scaling_suite("smoke"):
        seen.setdefault(name, make)
    for name, make in large_scaling_suite("smoke"):
        seen.setdefault(name, make)
    return sorted(seen.items())


def _fingerprint(graph):
    """Every observable of a ReachableGraph, including orderings."""
    return (
        tuple(graph.states),
        tuple((t.source, t.command, t.target) for t in graph.transitions),
        tuple(frozenset(graph.enabled_at(i)) for i in range(len(graph))),
        tuple(graph.initial_indices),
        tuple(sorted(graph.frontier)),
    )


class TestDifferentialComplete:
    """Unbounded exploration: sharded == serial on every family."""

    @pytest.mark.parametrize("name,make", _families())
    def test_bit_identical_graphs(self, force_parallel, name, make):
        serial = explore(make())
        expected = _fingerprint(serial)
        expected_digest = graph_digest(serial)
        for jobs in JOB_COUNTS:
            sharded = explore(make(), n_jobs=jobs)
            assert _fingerprint(sharded) == expected, (
                f"{name}: n_jobs={jobs} differs from serial"
            )
            assert graph_digest(sharded) == expected_digest

    def test_two_sharded_runs_agree(self, force_parallel):
        first = explore(counter_grid(3, 4), n_jobs=4)
        second = explore(counter_grid(3, 4), n_jobs=4)
        assert graph_digest(first) == graph_digest(second)
        assert _fingerprint(first) == _fingerprint(second)

    def test_jobs_one_is_the_serial_path(self):
        assert _fingerprint(explore(counter_grid(2, 5), n_jobs=1)) == (
            _fingerprint(explore(counter_grid(2, 5)))
        )


class TestDifferentialBounded:
    """Truncated exploration: budgets, depth bounds and strict errors."""

    @pytest.mark.parametrize("name,make", _families())
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_max_states_identical(self, force_parallel, name, make, jobs):
        serial = explore(make(), max_states=10)
        sharded = explore(make(), max_states=10, n_jobs=jobs)
        assert _fingerprint(sharded) == _fingerprint(serial)
        assert sharded.frontier == serial.frontier

    @pytest.mark.parametrize("name,make", _families())
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_max_depth_identical(self, force_parallel, name, make, jobs):
        serial = explore(make(), max_depth=2)
        sharded = explore(make(), max_depth=2, n_jobs=jobs)
        assert _fingerprint(sharded) == _fingerprint(serial)

    @pytest.mark.parametrize("name,make", _families())
    def test_strict_error_message_identical(self, force_parallel, name, make):
        try:
            explore(make(), max_states=5, strict=True)
        except ExplorationLimitError as error:
            serial_message = str(error)
        else:
            pytest.skip(f"{name} has fewer than 5 states")
        for jobs in JOB_COUNTS:
            with pytest.raises(ExplorationLimitError) as excinfo:
                explore(make(), max_states=5, strict=True, n_jobs=jobs)
            assert str(excinfo.value) == serial_message


class _Opaque(TransitionSystem):
    """A system without a shard spec (inherits the None default)."""

    def __init__(self, inner):
        self._inner = inner

    def initial_states(self):
        return self._inner.initial_states()

    def commands(self):
        return self._inner.commands()

    def enabled(self, state):
        return self._inner.enabled(state)

    def post(self, state):
        return self._inner.post(state)


class TestFallbacks:
    def test_unshardable_system_falls_back_to_serial(self, force_parallel):
        inner = dining_philosophers(3)
        assert _Opaque(inner).shard_spec() is None
        serial = explore(dining_philosophers(3))
        fallback = explore(_Opaque(dining_philosophers(3)), n_jobs=4)
        assert _fingerprint(fallback) == _fingerprint(serial)

    def test_serial_request_never_imports_sharding(self):
        graph = explore(counter_grid(2, 4), n_jobs=None)
        assert len(graph) > 0


class TestPicklability:
    """Workers rebuild systems from ``shard_spec``; the pieces must ship."""

    def test_program_pickle_roundtrip(self):
        program = counter_grid(2, 4)
        clone = pickle.loads(pickle.dumps(program))
        assert _fingerprint(explore(clone)) == _fingerprint(explore(program))

    def test_compiled_program_pickle_roundtrip(self):
        program = counter_grid(2, 3)
        explore(program)  # force compilation
        compiled = program._compiled
        assert isinstance(compiled, CompiledProgram)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.by_label.keys() == compiled.by_label.keys()

    def test_shard_spec_rebuilds_equivalent_system(self):
        program = counter_grid(2, 4)
        spec = program.shard_spec()
        assert spec is not None
        rebuilt = pickle.loads(spec)
        assert _fingerprint(explore(rebuilt)) == (
            _fingerprint(explore(program))
        )


class TestRoundDispatch:
    def test_serial_requests_stay_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        assert _round_workers(1, 10**6) == 1
        assert _round_workers(0, 10**6) == 1
        assert _round_workers(4, 0) == 1

    def test_narrow_rounds_are_demoted(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert _round_workers(4, SHARD_ROUND_CUTOFF - 1) == 1
        assert _round_workers(4, SHARD_ROUND_CUTOFF) == 4

    def test_single_core_demotes(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert _round_workers(4, SHARD_ROUND_CUTOFF * 10) == 1

    def test_force_env_overrides(self, force_parallel):
        assert _round_workers(4, 1) == 4


class TestGraphDigest:
    def test_digest_is_stable_across_explorations(self):
        a = explore(counter_grid(2, 5))
        b = explore(counter_grid(2, 5))
        assert graph_digest(a) == graph_digest(b)

    def test_digest_distinguishes_graphs(self):
        assert graph_digest(explore(counter_grid(2, 5))) != (
            graph_digest(explore(counter_grid(2, 4)))
        )

    def test_digest_sees_the_frontier(self):
        complete = explore(counter_grid(2, 5))
        truncated = explore(counter_grid(2, 5), max_states=10)
        assert graph_digest(complete) != graph_digest(truncated)


class TestValuePlaneWireFormats:
    """The zero-copy PR (DESIGN §6f) added a second parallel wire format:
    value-plane systems ship flat int64 rows over shared memory instead
    of pickled state objects.  Both formats, and the serial explorer,
    must stay fingerprint-identical — including under truncation."""

    @pytest.mark.parametrize("name,make", _families())
    def test_three_paths_identical(self, force_parallel, monkeypatch, name, make):
        from repro.engine.shard import value_plane_of

        serial = _fingerprint(explore(make()))
        shm_path = _fingerprint(explore(make(), n_jobs=2))
        monkeypatch.setenv("REPRO_VALUE_PLANE", "0")
        assert value_plane_of(make()) is None
        pickled = _fingerprint(explore(make(), n_jobs=2))
        assert shm_path == serial, f"{name}: shm wire format differs"
        assert pickled == serial, f"{name}: pickled wire format differs"

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_bounded_value_plane_identical(self, force_parallel, jobs):
        serial = explore(counter_grid(6, 6), max_states=17)
        plane = explore(counter_grid(6, 6), max_states=17, n_jobs=jobs)
        assert _fingerprint(plane) == _fingerprint(serial)
        assert plane.frontier == serial.frontier

    def test_value_plane_strict_error_identical(self, force_parallel):
        with pytest.raises(ExplorationLimitError) as serial_error:
            explore(counter_grid(6, 6), max_states=5, strict=True)
        with pytest.raises(ExplorationLimitError) as plane_error:
            explore(counter_grid(6, 6), max_states=5, strict=True, n_jobs=2)
        assert str(plane_error.value) == str(serial_error.value)

    def test_plane_takes_coordinator_without_force(self, monkeypatch):
        """On any machine, a value-plane system asked for parallelism runs
        the coordinator (batched rounds beat the plain serial loop even
        when the pool is demoted) — digests must still match serial."""
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        serial = explore(counter_grid(6, 6))
        routed = explore(counter_grid(6, 6), n_jobs=4)
        assert _fingerprint(routed) == _fingerprint(serial)

    def test_no_segments_survive_exploration(self, force_parallel):
        from repro.engine import shm

        explore(counter_grid(6, 6), n_jobs=2)
        assert shm.live_segment_names() == []
