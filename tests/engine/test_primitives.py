"""Unit tests for the engine primitives: interner, packed arrays, chunking."""

import pytest

from repro.engine import (
    CommandTable,
    PackedGraph,
    StateInterner,
    chunk_items,
    parallel_map,
    resolve_jobs,
    tarjan_scc_csr,
)


class TestStateInterner:
    def test_first_intern_is_fresh(self):
        interner = StateInterner()
        index, fresh = interner.intern(("a", 1))
        assert index == 0 and fresh

    def test_reintern_returns_same_index(self):
        interner = StateInterner()
        first, _ = interner.intern(("a", 1))
        interner.intern(("b", 2))
        again, fresh = interner.intern(("a", 1))
        assert again == first and not fresh

    def test_indices_are_discovery_order(self):
        interner = StateInterner()
        for expected, state in enumerate(["x", "y", "z"]):
            index, fresh = interner.intern(state)
            assert index == expected and fresh
        assert list(interner.states) == ["x", "y", "z"]

    def test_lookup(self):
        interner = StateInterner()
        interner.intern("x")
        assert interner.lookup("x") == 0
        assert interner.lookup("missing") is None


class TestCommandTable:
    def test_ids_are_dense_in_declaration_order(self):
        table = CommandTable(["a", "b"])
        assert table.id_of("a") == 0
        assert table.id_of("b") == 1
        assert table.label_of(1) == "b"
        assert len(table) == 2

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            CommandTable(["a", "a"])

    def test_singleton_and_masks(self):
        table = CommandTable(["a", "b"])
        a, b = table.id_of("a"), table.id_of("b")
        assert table.singleton(a) == frozenset({"a"})
        mask = table.mask_of(["a", "b"])
        assert table.labels_of_mask(mask) == frozenset({"a", "b"})
        assert table.labels_of_mask(0) == frozenset()
        # The mask cache must not conflate distinct masks.
        assert table.labels_of_mask(1 << b) == frozenset({"b"})


class TestPackedGraph:
    def test_csr_roundtrip_preserves_transition_order(self):
        triples = [(0, 0, 1), (0, 1, 2), (1, 0, 0), (2, 0, 2), (0, 0, 0)]
        packed = PackedGraph.build(3, triples)
        # out_eids yields each state's transitions in original insertion order.
        assert list(packed.out_eids(0)) == [0, 1, 4]
        assert list(packed.out_eids(1)) == [2]
        assert list(packed.out_eids(2)) == [3]
        assert [packed.dst[e] for e in packed.out_eids(0)] == [1, 2, 0]

    def test_empty_graph(self):
        packed = PackedGraph.build(0, [])
        assert len(packed.src) == 0

    def test_successors(self):
        packed = PackedGraph.build(2, [(0, 0, 1), (0, 0, 1), (1, 0, 0)])
        assert list(packed.successors(0)) == [1, 1]


class TestTarjanCsr:
    def test_two_sccs_in_reverse_topological_order(self):
        # 0 <-> 1 -> 2 <-> 3 : the sink SCC {2,3} must come first.
        packed = PackedGraph.build(
            4, [(0, 0, 1), (1, 0, 0), (1, 0, 2), (2, 0, 3), (3, 0, 2)]
        )
        components = tarjan_scc_csr(packed)
        assert [sorted(c) for c in components] == [[2, 3], [0, 1]]

    def test_restriction_to_members(self):
        packed = PackedGraph.build(
            4, [(0, 0, 1), (1, 0, 0), (1, 0, 2), (2, 0, 3), (3, 0, 2)]
        )
        components = tarjan_scc_csr(packed, members={0, 1})
        assert [sorted(c) for c in components] == [[0, 1]]

    def test_singletons(self):
        packed = PackedGraph.build(3, [(0, 0, 1), (1, 0, 2)])
        components = tarjan_scc_csr(packed)
        assert [list(c) for c in components] == [[2], [1], [0]]


class TestTarjanScratch:
    """The recycled work arrays (DESIGN §6f) must be invisible: any
    sequence of passes through one scratch returns exactly what fresh
    per-call arrays would, even across different graphs and after an
    aborted pass."""

    GRAPHS = [
        PackedGraph.build(
            4, [(0, 0, 1), (1, 0, 0), (1, 0, 2), (2, 0, 3), (3, 0, 2)]
        ),
        PackedGraph.build(3, [(0, 0, 1), (1, 0, 2)]),
        PackedGraph.build(
            5, [(0, 0, 1), (1, 0, 2), (2, 0, 0), (3, 0, 4), (4, 0, 3)]
        ),
    ]

    def test_reuse_across_graphs_matches_fresh(self):
        from repro.engine.analysis import TarjanScratch

        scratch = TarjanScratch()
        for packed in self.GRAPHS * 3:  # interleave sizes, revisit graphs
            assert tarjan_scc_csr(packed, scratch=scratch) == (
                tarjan_scc_csr(packed)
            )

    def test_reuse_across_restrictions_matches_fresh(self):
        from repro.engine.analysis import TarjanScratch

        packed = self.GRAPHS[0]
        scratch = TarjanScratch()
        regions = [{0, 1}, {2, 3}, {0, 1, 2, 3}, {1, 2}, {3}]
        for members in regions * 2:
            assert tarjan_scc_csr(packed, members, scratch=scratch) == (
                tarjan_scc_csr(packed, members)
            )

    def test_stamped_mode_reuses_scratch(self):
        from repro.engine.analysis import TarjanScratch

        packed = self.GRAPHS[0]
        scratch = TarjanScratch()
        stamp = [0, 0, 0, 0]
        for generation, members in enumerate([[2, 3], [0, 1, 2, 3]], start=1):
            for i in members:
                stamp[i] = generation
            got = tarjan_scc_csr(
                packed, members, stamp=stamp, stamp_value=generation,
                scratch=scratch,
            )
            assert got == tarjan_scc_csr(packed, set(members))

    def test_scratch_recovers_after_raising_walk(self):
        from repro.engine.analysis import TarjanScratch

        class Hostile:
            """A CSR facade whose dst access raises mid-walk."""

            def __init__(self, packed):
                self.n = packed.n
                self.out_start = packed.out_start
                self.out_eid = packed.out_eid
                self.dst = _RaisingSeq(packed.dst)

        class _RaisingSeq:
            def __init__(self, inner):
                self.inner = inner
                self.reads = 0

            def __getitem__(self, index):
                self.reads += 1
                if self.reads > 2:
                    raise RuntimeError("corrupt CSR")
                return self.inner[index]

        packed = self.GRAPHS[0]
        scratch = TarjanScratch()
        with pytest.raises(RuntimeError):
            tarjan_scc_csr(Hostile(packed), scratch=scratch)
        # The aborted pass retired its epoch and drained its stack — the
        # scratch serves the next caller exactly like a fresh one.
        assert not scratch.stack
        assert tarjan_scc_csr(packed, scratch=scratch) == (
            tarjan_scc_csr(packed)
        )


class TestParallelPlumbing:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3

    def test_chunk_items_contiguous_ordered_balanced(self):
        items = list(range(10))
        chunks = chunk_items(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_items_more_chunks_than_items(self):
        chunks = chunk_items([1, 2], 5)
        assert [x for chunk in chunks for x in chunk] == [1, 2]
        assert all(chunk for chunk in chunks)

    def test_parallel_map_serial_path(self):
        assert parallel_map(_double, [1, 2, 3], n_jobs=1) == [2, 4, 6]

    def test_parallel_map_pool_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_double, items, n_jobs=2) == [x * 2 for x in items]


def _double(x):
    return x * 2
