"""The content-addressed graph store: bit-identity, chunks, incremental.

Everything here is differential: warm loads, migrated v1 entries and
incremental re-explorations are compared against fresh serial
explorations via :func:`~repro.engine.shard.graph_digest` (and full
object-level fingerprints), so a wrong graph — not just a crash — fails.
"""

import json
import os
from array import array
from pathlib import Path

import pytest

from repro.engine import (
    evict_cache,
    exploration_cache_key,
    explore_with_cache,
    graph_digest,
    load_cached_graph,
    store_graph,
)
from repro.engine import graphstore
from repro.engine.graphstore import (
    ValueColumnStates,
    explore_incremental,
    family_key,
    find_incremental_base,
    last_outcome,
    load_graph_v1,
    store_graph_v1,
    v1_cache_key,
)
from repro.gcl import parse_program
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    grid_hypercube_rebound,
    modulus_chain,
    p2,
)


def _fingerprint(graph):
    return (
        list(graph.states),
        list(graph.transitions),
        [graph.enabled_at(i) for i in range(len(graph))],
        list(graph.initial_indices),
        sorted(graph.frontier),
    )


@pytest.fixture
def tiny_chunks(monkeypatch):
    """Shrink chunks so toy graphs exercise multi-chunk columns."""
    monkeypatch.setenv("REPRO_GRAPHSTORE_CHUNK_WORDS", "8")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [lambda: p2(5), lambda: counter_grid(3, 3),
                    lambda: modulus_chain(2)],
        ids=["p2", "grid", "chain"],
    )
    def test_reload_is_bit_identical(self, factory, tmp_path):
        program = factory()
        graph, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert not hit
        reloaded, hit = explore_with_cache(factory(), cache_dir=tmp_path)
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)
        assert graph_digest(reloaded) == graph_digest(graph)
        # The reloaded graph is attached to the *new* program instance.
        assert reloaded.system is not graph.system

    def test_reload_is_bit_identical_multichunk(self, tiny_chunks, tmp_path):
        graph, hit = explore_with_cache(counter_grid(4, 4), cache_dir=tmp_path)
        assert not hit
        assert len(list(tmp_path.glob("chunk-*.bin"))) > 5
        reloaded, hit = explore_with_cache(
            counter_grid(4, 4), cache_dir=tmp_path
        )
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_bounded_exploration_round_trips_frontier(self, tmp_path):
        graph, hit = explore_with_cache(
            p2(50), max_states=10, cache_dir=tmp_path
        )
        assert not hit
        assert graph.frontier  # the bound actually truncated something
        reloaded, hit = explore_with_cache(
            p2(50), max_states=10, cache_dir=tmp_path
        )
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_none_cache_dir_is_plain_exploration(self):
        graph, hit = explore_with_cache(p2(5), cache_dir=None)
        assert not hit
        assert last_outcome().kind == "bypass"
        assert _fingerprint(graph) == _fingerprint(explore(p2(5)))

    def test_warm_load_is_lazy(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        store_graph(explore(program), tmp_path, key)
        reloaded = load_cached_graph(p2(5), tmp_path, key)
        # States and the index dict are not materialized by the load...
        assert isinstance(reloaded.states, ValueColumnStates)
        assert reloaded._index is None
        # ...but object-level access works and agrees with exploration.
        fresh = explore(p2(5))
        assert reloaded.index_of(fresh.state_of(3)) == 3
        assert reloaded.contains(fresh.state_of(0))
        assert reloaded._index is not None

    def test_single_chunk_columns_are_zero_copy(self, tmp_path):
        program = counter_grid(3, 3)
        key = exploration_cache_key(program)
        store_graph(explore(program), tmp_path, key)
        reloaded = load_cached_graph(counter_grid(3, 3), tmp_path, key)
        src, cmd, dst = reloaded.transition_columns
        assert isinstance(src, memoryview)  # a cast over the mapping
        assert isinstance(reloaded.enabled_masks, memoryview)
        # The engine paths consume the views like arrays.
        assert len(reloaded.analyses.full_components()) > 0
        assert len(reloaded.outgoing(0)) > 0

    def test_value_column_states_sequence_protocol(self):
        column = array("q", [0, 1, 2, 3, 4, 5])
        states = ValueColumnStates(("x", "y"), column, 3)
        assert len(states) == 3
        assert states[1].values == (2, 3)
        assert states[-1].values == (4, 5)
        assert [s.values for s in states] == [(0, 1), (2, 3), (4, 5)]
        assert tuple(s.values for s in states[1:]) == ((2, 3), (4, 5))
        with pytest.raises(IndexError):
            states[3]


class TestCacheKey:
    def test_insensitive_to_formatting(self):
        dense = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        spaced = parse_program(
            """
            program T
            var x := 0
            do
                a: x < 3 -> x := x + 1
            od
            """
        )
        assert exploration_cache_key(dense) == exploration_cache_key(spaced)

    def test_sensitive_to_program_semantics(self):
        base = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        changed = parse_program(
            "program T var x := 0 do a: x < 4 -> x := x + 1 od"
        )
        assert exploration_cache_key(base) != exploration_cache_key(changed)

    def test_sensitive_to_bounds(self):
        program = p2(5)
        keys = {
            exploration_cache_key(program),
            exploration_cache_key(program, max_states=10),
            exploration_cache_key(program, max_depth=10),
            exploration_cache_key(program, max_states=10, max_depth=10),
        }
        assert len(keys) == 4

    def test_different_bounds_do_not_share_entries(self, tmp_path):
        explore_with_cache(p2(50), max_states=10, cache_dir=tmp_path)
        graph, hit = explore_with_cache(p2(50), cache_dir=tmp_path)
        assert not hit
        assert not graph.frontier

    def test_serial_spellings_share_one_key(self):
        base = exploration_cache_key(p2(5))
        assert exploration_cache_key(p2(5), n_jobs=0) == base
        assert exploration_cache_key(p2(5), n_jobs=1) == base

    def test_job_count_enters_the_key(self):
        assert exploration_cache_key(p2(5), n_jobs=4) != (
            exploration_cache_key(p2(5))
        )

    def test_sharded_entry_round_trips(self, tmp_path):
        graph, hit = explore_with_cache(p2(5), cache_dir=tmp_path, n_jobs=4)
        assert not hit
        reloaded, hit = explore_with_cache(p2(5), cache_dir=tmp_path, n_jobs=4)
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_family_key_ignores_command_edits(self):
        kicked = family_key(grid_hypercube_rebound(2, 2, kick=1))
        rekicked = family_key(grid_hypercube_rebound(2, 2, kick=2))
        assert kicked == rekicked
        assert kicked != family_key(
            grid_hypercube_rebound(2, 2, kick=1), max_states=10
        )


class TestCorruption:
    """Satellite: every corruption degrades to a clean miss, never a
    wrong graph — re-exploration after the miss matches serial digests."""

    def _stored(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        report = store_graph(explore(program), tmp_path, key)
        return key, report

    def _assert_clean_miss(self, tmp_path, key):
        assert load_cached_graph(p2(5), tmp_path, key) is None
        reloaded, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert not hit
        assert graph_digest(reloaded) == graph_digest(explore(p2(5)))
        again, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert hit
        assert graph_digest(again) == graph_digest(reloaded)

    def test_truncated_chunk_is_a_miss(self, tmp_path):
        key, report = self._stored(tmp_path)
        chunk = next(tmp_path.glob("chunk-*.bin"))
        chunk.write_bytes(chunk.read_bytes()[:-8])
        self._assert_clean_miss(tmp_path, key)

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        key, report = self._stored(tmp_path)
        chunk = max(
            tmp_path.glob("chunk-*.bin"), key=lambda p: p.stat().st_size
        )
        raw = bytearray(chunk.read_bytes())
        raw[0] ^= 0xFF  # same length, different content
        chunk.write_bytes(bytes(raw))
        self._assert_clean_miss(tmp_path, key)

    def test_torn_manifest_is_a_miss(self, tmp_path):
        key, report = self._stored(tmp_path)
        text = report.manifest.read_text()
        report.manifest.write_text(text[: len(text) // 2])
        self._assert_clean_miss(tmp_path, key)

    def test_version_mismatch_is_a_miss(self, tmp_path):
        key, report = self._stored(tmp_path)
        payload = json.loads(report.manifest.read_text())
        payload["format"] = -1
        report.manifest.write_text(json.dumps(payload))
        assert load_cached_graph(p2(5), tmp_path, key) is None

    def test_entry_for_other_program_is_a_miss(self, tmp_path):
        key = exploration_cache_key(p2(5))
        store_graph(explore(p2(5)), tmp_path, key)
        # Same key on disk, but the program shape disagrees: reject.
        assert load_cached_graph(counter_grid(2, 2), tmp_path, key) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert load_cached_graph(p2(5), tmp_path, "0" * 64) is None

    def test_vanished_chunk_is_a_miss(self, tmp_path):
        key, _ = self._stored(tmp_path)
        next(tmp_path.glob("chunk-*.bin")).unlink()
        self._assert_clean_miss(tmp_path, key)

    def test_chunk_deleted_between_manifest_read_and_mmap(
        self, tmp_path, monkeypatch
    ):
        # The eviction race of the LRU satellite: the manifest parses
        # fine, then a concurrent eviction removes a chunk before the
        # load maps it.  Must be a clean miss, not an exception.
        key, _ = self._stored(tmp_path)
        chunk = next(tmp_path.glob("chunk-*.bin"))
        real = graphstore._read_manifest

        def racing_read(path):
            manifest = real(path)
            if chunk.exists():
                chunk.unlink()  # eviction wins the race
            return manifest

        monkeypatch.setattr(graphstore, "_read_manifest", racing_read)
        assert load_cached_graph(p2(5), tmp_path, key) is None
        monkeypatch.undo()
        self._assert_clean_miss(tmp_path, key)

    def test_only_programs_are_cacheable(self, tmp_path):
        from repro.workloads import nested_rings

        graph = explore(nested_rings(2))
        with pytest.raises(TypeError):
            store_graph(graph, tmp_path, "0" * 64)

    def test_verify_can_be_disabled(self, tmp_path, monkeypatch):
        key, _ = self._stored(tmp_path)
        monkeypatch.setenv("REPRO_GRAPHSTORE_VERIFY", "0")
        reloaded = load_cached_graph(p2(5), tmp_path, key)
        assert graph_digest(reloaded) == graph_digest(explore(p2(5)))

    def test_no_temp_files_left_behind(self, tmp_path):
        explore_with_cache(p2(5), cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestChunkDedup:
    def test_identical_graph_under_second_key_writes_nothing(self, tmp_path):
        graph = explore(p2(5))
        first = store_graph(graph, tmp_path, "0" * 64)
        assert first.chunks_reused == 0
        assert first.bytes_written > 0
        second = store_graph(graph, tmp_path, "1" * 64)
        assert second.chunks_total == first.chunks_total
        assert second.chunks_reused == second.chunks_total
        assert second.bytes_written == 0

    def test_single_command_edit_shares_most_chunks(
        self, tiny_chunks, tmp_path
    ):
        base = grid_hypercube_rebound(2, 4, kick=1)
        explore_with_cache(base, cache_dir=tmp_path)
        edited = grid_hypercube_rebound(2, 4, kick=2)
        graph, hit = explore_with_cache(edited, cache_dir=tmp_path)
        assert not hit
        outcome = last_outcome()
        assert outcome.kind == "incremental"
        # The kick edit moves one transition target; everything else —
        # state rows, masks, src/cmd columns — re-publishes from the
        # chunks the base exploration wrote.
        assert outcome.chunks_reused >= outcome.chunks_total // 2
        assert graph_digest(graph) == graph_digest(explore(edited))


class TestIncremental:
    def test_replay_is_bit_identical(self, tmp_path):
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
        )
        edited = grid_hypercube_rebound(2, 3, kick=2)
        graph, hit = explore_with_cache(edited, cache_dir=tmp_path)
        assert not hit
        outcome = last_outcome()
        assert outcome.kind == "incremental"
        assert outcome.reused_states > 0
        fresh = explore(grid_hypercube_rebound(2, 3, kick=2))
        assert graph_digest(graph) == graph_digest(fresh)
        assert _fingerprint(graph) == _fingerprint(fresh)

    def test_replay_with_bounded_base_is_bit_identical(self, tmp_path):
        # Base-frontier states were never fully expanded there: their
        # posts must not be replayed (their masks may be).
        explore_with_cache(p2(50), max_states=20, cache_dir=tmp_path)
        edited = parse_program(_edited_p2_50_source())
        graph, hit = explore_with_cache(
            edited, max_states=20, cache_dir=tmp_path
        )
        assert not hit
        assert last_outcome().kind == "incremental"
        fresh = explore(
            parse_program(_edited_p2_50_source()), max_states=20
        )
        assert _fingerprint(graph) == _fingerprint(fresh)

    def test_disjoint_commands_find_no_base(self, tmp_path):
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
        )
        # Same name/variables but every command renamed: nothing to
        # replay, so the run is an ordinary cold exploration.
        source = """
        program HypercubeRebound
        var x0 := 3, x1 := 3
        do
             other0: x0 > 0 -> x0 := x0 - 1
          [] other1: x1 > 0 -> x1 := x1 - 1
        od
        """
        graph, hit = explore_with_cache(
            parse_program(source), cache_dir=tmp_path
        )
        assert not hit
        assert last_outcome().kind == "cold"
        assert graph_digest(graph) == graph_digest(
            explore(parse_program(source))
        )

    def test_base_respects_bounds_family(self, tmp_path):
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
        )
        # A bounded run must not replay the unbounded base.
        assert (
            find_incremental_base(
                grid_hypercube_rebound(2, 3, kick=2),
                tmp_path,
                max_states=5,
            )
            is None
        )

    def test_interpreted_program_cannot_replay(self, tmp_path):
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
        )
        base = find_incremental_base(
            grid_hypercube_rebound(2, 3, kick=2), tmp_path
        )
        assert base is not None
        from repro.gcl.parser import parse_program_ast
        from repro.gcl.program import Program

        interpreted = Program(
            parse_program_ast(_rebound_source(2, 3, 2)), compiled=False
        )
        assert explore_incremental(interpreted, base) is None

    def test_freshest_base_wins(self, tmp_path):
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
        )
        first = next(tmp_path.glob("manifest-*.json"))
        os.utime(first, (1000, 1000))
        explore_with_cache(
            grid_hypercube_rebound(2, 3, kick=2), cache_dir=tmp_path
        )
        base = find_incremental_base(
            grid_hypercube_rebound(2, 3, kick=3), tmp_path
        )
        assert base is not None
        # The kick=2 graph (fresher mtime) is the replay base: its
        # rebound digest matches kick's... no — all three kicks differ;
        # freshness is what picks.  The base's own digests expose which.
        digests2 = grid_hypercube_rebound(2, 3, kick=2).command_digests()
        assert base.command_digests["rebound"] == digests2["rebound"]


def _rebound_source(dims, side, kick):
    from repro.gcl.pretty import render_program

    return render_program(grid_hypercube_rebound(dims, side, kick).ast)


def _edited_p2_50_source():
    from repro.gcl.pretty import render_program

    # One-command edit of p2(50): same labels/variables, la's body changed.
    source = render_program(p2(50).ast)
    assert "x := x + 1" in source
    return source.replace("x := x + 1", "x := x + 2", 1)


class TestMigration:
    def test_v1_entry_migrates_to_v2_on_hit(self, tmp_path):
        program = p2(5)
        graph = explore(program)
        store_graph_v1(graph, tmp_path, v1_cache_key(program))
        assert list(tmp_path.glob("graph-*.json"))
        migrated, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert hit
        assert last_outcome().kind == "migrated"
        assert _fingerprint(migrated) == _fingerprint(graph)
        # The legacy entry is gone; the v2 manifest serves the next hit.
        assert not list(tmp_path.glob("graph-*.json"))
        assert list(tmp_path.glob("manifest-*.json"))
        again, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert hit
        assert last_outcome().kind == "hit"
        assert _fingerprint(again) == _fingerprint(graph)

    def test_v1_round_trip_helpers(self, tmp_path):
        program = p2(50)
        graph = explore(program, max_states=10)
        key = v1_cache_key(program, max_states=10)
        store_graph_v1(graph, tmp_path, key)
        reloaded = load_graph_v1(p2(50), tmp_path, key)
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_corrupt_v1_entry_is_deleted_and_re_explored(self, tmp_path):
        program = p2(5)
        key = v1_cache_key(program)
        path = store_graph_v1(explore(program), tmp_path, key)
        path.write_text("{ not json")
        graph, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert not hit
        assert not path.exists()
        assert graph_digest(graph) == graph_digest(explore(p2(5)))


class TestWideProgramsBypass:
    def _wide_program(self):
        commands = "\n  [] ".join(
            f"c{i}: x == {i} -> x := x + 1" for i in range(65)
        )
        return parse_program(
            f"program Wide var x := 0 do {commands} od"
        )

    def test_over_64_commands_bypass_the_cache(self, tmp_path):
        program = self._wide_program()
        graph, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert not hit
        assert last_outcome().kind == "bypass"
        assert list(tmp_path.iterdir()) == []

    def test_store_graph_rejects_over_64_commands(self, tmp_path):
        graph = explore(self._wide_program())
        with pytest.raises(ValueError):
            store_graph(graph, tmp_path, "0" * 64)


class TestEviction:
    def _store(self, tmp_path, program, mtime):
        key = exploration_cache_key(program)
        report = store_graph(explore(program), tmp_path, key)
        paths = [report.manifest] + [
            tmp_path / f"chunk-{digest}.bin"
            for digests in report.column_digests.values()
            for digest in digests
        ]
        for path in paths:
            os.utime(path, (mtime, mtime))
        return report

    def _entry_mb(self, report):
        size = report.manifest.stat().st_size
        for digests in report.column_digests.values():
            for digest in digests:
                size += (
                    report.manifest.parent / f"chunk-{digest}.bin"
                ).stat().st_size
        return size / (1024 * 1024)

    def test_none_budget_is_unbounded(self, tmp_path):
        self._store(tmp_path, p2(5), 1000)
        assert evict_cache(tmp_path, None) == []
        assert list(tmp_path.glob("manifest-*.json"))

    def test_oldest_entries_evicted_first_with_chunks(self, tmp_path):
        oldest = self._store(tmp_path, p2(5), 1000)
        newest = self._store(tmp_path, p2(7), 3000)
        removed = evict_cache(tmp_path, self._entry_mb(newest))
        assert oldest.manifest in removed
        assert not oldest.manifest.exists()
        assert newest.manifest.exists()
        # The survivor's chunks all survive; the victim's are gone.
        for digests in newest.column_digests.values():
            for digest in digests:
                assert (tmp_path / f"chunk-{digest}.bin").exists()
        survivors = {
            d for ds in newest.column_digests.values() for d in ds
        }
        for path in tmp_path.glob("chunk-*.bin"):
            assert path.name[len("chunk-"):-len(".bin")] in survivors

    def test_shared_chunks_survive_partial_eviction(self, tmp_path):
        # Same graph under two keys: all chunks shared.  Evicting one
        # manifest must keep every chunk the survivor references.
        graph = explore(p2(5))
        a = store_graph(graph, tmp_path, "0" * 64)
        b = store_graph(graph, tmp_path, "1" * 64)
        os.utime(a.manifest, (1000, 1000))
        os.utime(b.manifest, (3000, 3000))
        removed = evict_cache(tmp_path, self._entry_mb(b))
        assert a.manifest in removed
        assert b.manifest.exists()
        for digests in b.column_digests.values():
            for digest in digests:
                assert (tmp_path / f"chunk-{digest}.bin").exists()

    def test_load_touches_chunk_recency(self, tmp_path):
        a = self._store(tmp_path, p2(5), 1000)
        b = self._store(tmp_path, p2(6), 2000)
        key = exploration_cache_key(p2(5))
        assert load_cached_graph(p2(5), tmp_path, key) is not None
        # The load refreshed the manifest *and every chunk* of entry a...
        assert a.manifest.stat().st_mtime > b.manifest.stat().st_mtime
        for digests in a.column_digests.values():
            for digest in digests:
                chunk = tmp_path / f"chunk-{digest}.bin"
                assert chunk.stat().st_mtime > b.manifest.stat().st_mtime
        # ...so entry b is now the LRU victim.
        removed = evict_cache(tmp_path, self._entry_mb(a))
        assert b.manifest in removed
        assert a.manifest.exists()

    def test_budget_is_a_hard_cap(self, tmp_path):
        only = self._store(tmp_path, p2(5), 1000)
        removed = evict_cache(tmp_path, 1e-9)
        assert only.manifest in removed
        assert list(tmp_path.glob("manifest-*.json")) == []
        assert list(tmp_path.glob("chunk-*.bin")) == []

    def test_legacy_v1_entries_count_and_evict(self, tmp_path):
        # Satellite: graph-*.json leftovers are budget-counted LRU
        # victims, not crashes.
        legacy = store_graph_v1(
            explore(p2(5)), tmp_path, v1_cache_key(p2(5))
        )
        os.utime(legacy, (500, 500))
        keeper = self._store(tmp_path, p2(6), 2000)
        removed = evict_cache(tmp_path, self._entry_mb(keeper))
        assert legacy in removed
        assert not legacy.exists()
        assert keeper.manifest.exists()

    def test_corrupt_manifests_are_ordinary_victims(self, tmp_path):
        junk = tmp_path / ("manifest-" + "f" * 64 + ".json")
        junk.write_text("{ not json")
        os.utime(junk, (500, 500))
        keeper = self._store(tmp_path, p2(5), 2000)
        removed = evict_cache(tmp_path, self._entry_mb(keeper))
        assert junk in removed
        assert keeper.manifest.exists()

    def test_unknown_files_are_never_touched(self, tmp_path):
        debris = tmp_path / "README.txt"
        debris.write_text("not ours")
        os.utime(debris, (1, 1))
        self._store(tmp_path, p2(5), 2000)
        evict_cache(tmp_path, 1e-9)
        assert debris.exists()

    def test_orphan_chunks_are_collected_after_grace(self, tmp_path):
        keeper = self._store(tmp_path, p2(5), 2000)
        orphan = tmp_path / ("chunk-" + "a" * 64 + ".bin")
        orphan.write_bytes(b"\0" * 64)
        os.utime(orphan, (500, 500))  # ancient: past any grace period
        evict_cache(tmp_path, self._entry_mb(keeper))
        assert not orphan.exists()
        assert keeper.manifest.exists()

    def test_fresh_orphans_survive_the_grace_period(self, tmp_path):
        # A payload-before-manifest publish in flight looks like an
        # orphan; eviction must not tear it down.
        keeper = self._store(tmp_path, p2(5), 2000)
        orphan = tmp_path / ("chunk-" + "a" * 64 + ".bin")
        orphan.write_bytes(b"\0" * 64)  # fresh mtime = now
        evict_cache(tmp_path, self._entry_mb(keeper))
        assert orphan.exists()

    def test_vanished_entry_is_tolerated(self, tmp_path, monkeypatch):
        victim = self._store(tmp_path, p2(5), 1000)
        keeper = self._store(tmp_path, p2(6), 2000)
        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            if self == victim.manifest:
                real_unlink(self)  # somebody else deleted it first
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        removed = evict_cache(tmp_path, 1e-9)
        assert victim.manifest in removed and keeper.manifest in removed
        assert not victim.manifest.exists()
        assert not keeper.manifest.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert evict_cache(tmp_path / "never-created", 1.0) == []

    def test_explore_with_cache_trims_after_store(self, tmp_path):
        self._store(tmp_path, p2(5), 1000)
        graph, hit = explore_with_cache(
            p2(50), cache_dir=tmp_path, cache_max_mb=1e-9
        )
        assert not hit
        # The budget is tiny: no manifest survives, including the new one
        # (fresh chunks may linger inside the orphan grace period).
        assert list(tmp_path.glob("manifest-*.json")) == []
        assert list(tmp_path.glob("graph-*.json")) == []


class TestSuccessorCacheStats:
    def test_exploration_populates_then_hits(self):
        program = counter_grid(3, 3)
        explore(program)
        hits, misses = program.successor_cache_stats()
        assert misses > 0
        explore(program)
        hits_after, misses_after = program.successor_cache_stats()
        assert misses_after == misses  # second pass re-executes nothing
        assert hits_after > hits
        program.clear_successor_cache()
        assert program.successor_cache_stats() == (0, 0)


class TestCommandDigests:
    def test_digest_ignores_formatting(self):
        dense = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        spaced = parse_program(
            "program T var x := 0 do a: x<3 ->   x := x+1 od"
        )
        assert dense.command_digests() == spaced.command_digests()

    def test_digest_tracks_guard_and_body(self):
        base = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        guard = parse_program(
            "program T var x := 0 do a: x < 4 -> x := x + 1 od"
        )
        body = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 2 od"
        )
        assert base.command_digests() != guard.command_digests()
        assert base.command_digests() != body.command_digests()

    def test_per_command_isolation(self):
        one = grid_hypercube_rebound(2, 3, kick=1).command_digests()
        two = grid_hypercube_rebound(2, 3, kick=2).command_digests()
        assert one["dec0"] == two["dec0"]
        assert one["dec1"] == two["dec1"]
        assert one["rebound"] != two["rebound"]


class TestTelemetrySchema:
    def test_graphstore_counters_validate_in_snapshot(self, tmp_path):
        from repro import telemetry
        from repro.telemetry.schema import validate_snapshot

        telemetry.reset()
        telemetry.enable()
        try:
            explore_with_cache(
                grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
            )
            explore_with_cache(
                grid_hypercube_rebound(2, 3, kick=1), cache_dir=tmp_path
            )
            explore_with_cache(
                grid_hypercube_rebound(2, 3, kick=2), cache_dir=tmp_path
            )
            snapshot = telemetry.snapshot()
        finally:
            telemetry.disable()
            telemetry.reset()
        validate_snapshot(snapshot)  # raises on any schema violation
        counters = snapshot["metrics"]["counters"]
        for name in (
            "graphstore.hit",
            "graphstore.miss",
            "graphstore.store",
            "graphstore.chunk.hit",
            "graphstore.chunk.miss",
            "graphstore.bytes.mapped",
            "graphstore.bytes.written",
            "graphstore.incremental.runs",
            "graphstore.incremental.reused_states",
        ):
            assert counters.get(name, 0) > 0, name
