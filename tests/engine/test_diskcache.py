"""The cross-run on-disk graph cache: bit-identity, keying, robustness."""

import json
import os
from pathlib import Path

import pytest

from repro.engine import (
    evict_cache,
    exploration_cache_key,
    explore_with_cache,
    load_cached_graph,
    store_graph,
)
from repro.gcl import Program, parse_program
from repro.ts import explore
from repro.workloads import counter_grid, modulus_chain, p2


def _fingerprint(graph):
    return (
        list(graph.states),
        list(graph.transitions),
        [graph.enabled_at(i) for i in range(len(graph))],
        list(graph.initial_indices),
        sorted(graph.frontier),
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [lambda: p2(5), lambda: counter_grid(3, 3),
                    lambda: modulus_chain(2)],
        ids=["p2", "grid", "chain"],
    )
    def test_reload_is_bit_identical(self, factory, tmp_path):
        program = factory()
        graph, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert not hit
        reloaded, hit = explore_with_cache(factory(), cache_dir=tmp_path)
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)
        # The reloaded graph is attached to the *new* program instance.
        assert reloaded.system is not graph.system

    def test_bounded_exploration_round_trips_frontier(self, tmp_path):
        program = p2(50)
        graph, hit = explore_with_cache(
            program, max_states=10, cache_dir=tmp_path
        )
        assert not hit
        assert graph.frontier  # the bound actually truncated something
        reloaded, hit = explore_with_cache(
            p2(50), max_states=10, cache_dir=tmp_path
        )
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_none_cache_dir_is_plain_exploration(self):
        graph, hit = explore_with_cache(p2(5), cache_dir=None)
        assert not hit
        assert _fingerprint(graph) == _fingerprint(explore(p2(5)))


class TestCacheKey:
    def test_insensitive_to_formatting(self):
        dense = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        spaced = parse_program(
            """
            program T
            var x := 0
            do
                a: x < 3 -> x := x + 1
            od
            """
        )
        assert exploration_cache_key(dense) == exploration_cache_key(spaced)

    def test_sensitive_to_program_semantics(self):
        base = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        changed = parse_program(
            "program T var x := 0 do a: x < 4 -> x := x + 1 od"
        )
        assert exploration_cache_key(base) != exploration_cache_key(changed)

    def test_sensitive_to_bounds(self):
        program = p2(5)
        keys = {
            exploration_cache_key(program),
            exploration_cache_key(program, max_states=10),
            exploration_cache_key(program, max_depth=10),
            exploration_cache_key(program, max_states=10, max_depth=10),
        }
        assert len(keys) == 4

    def test_different_bounds_do_not_share_entries(self, tmp_path):
        explore_with_cache(p2(50), max_states=10, cache_dir=tmp_path)
        graph, hit = explore_with_cache(p2(50), cache_dir=tmp_path)
        assert not hit  # unbounded run must not reuse the truncated graph
        assert not graph.frontier


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        graph = explore(program)
        path = store_graph(graph, tmp_path, key)
        path.write_text("{ not json")
        assert load_cached_graph(p2(5), tmp_path, key) is None
        # explore_with_cache recovers by re-exploring and re-storing.
        reloaded, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert not hit
        assert _fingerprint(reloaded) == _fingerprint(graph)
        again, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert hit

    def test_version_mismatch_is_a_miss(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        path = store_graph(explore(program), tmp_path, key)
        payload = json.loads(path.read_text())
        payload["format"] = -1
        path.write_text(json.dumps(payload))
        assert load_cached_graph(p2(5), tmp_path, key) is None

    def test_entry_for_other_program_is_a_miss(self, tmp_path):
        key = exploration_cache_key(p2(5))
        store_graph(explore(p2(5)), tmp_path, key)
        # Same key on disk, but the program shape disagrees: reject.
        assert load_cached_graph(counter_grid(2, 2), tmp_path, key) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert load_cached_graph(p2(5), tmp_path, "0" * 64) is None

    def test_only_programs_are_cacheable(self, tmp_path):
        from repro.workloads import nested_rings

        graph = explore(nested_rings(2))
        with pytest.raises(TypeError):
            store_graph(graph, tmp_path, "0" * 64)

    def test_no_temp_files_left_behind(self, tmp_path):
        explore_with_cache(p2(5), cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestSuccessorCacheStats:
    def test_exploration_populates_then_hits(self):
        program = counter_grid(3, 3)
        explore(program)
        hits, misses = program.successor_cache_stats()
        assert misses > 0
        explore(program)
        hits_after, misses_after = program.successor_cache_stats()
        assert misses_after == misses  # second pass re-executes nothing
        assert hits_after > hits
        program.clear_successor_cache()
        assert program.successor_cache_stats() == (0, 0)


class TestCacheKeyJobs:
    def test_serial_spellings_share_one_key(self):
        base = exploration_cache_key(p2(5))
        assert exploration_cache_key(p2(5), n_jobs=0) == base
        assert exploration_cache_key(p2(5), n_jobs=1) == base

    def test_job_count_enters_the_key(self):
        assert exploration_cache_key(p2(5), n_jobs=4) != (
            exploration_cache_key(p2(5))
        )

    def test_sharded_entry_round_trips(self, tmp_path):
        graph, hit = explore_with_cache(p2(5), cache_dir=tmp_path, n_jobs=4)
        assert not hit
        reloaded, hit = explore_with_cache(p2(5), cache_dir=tmp_path, n_jobs=4)
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)


class TestEviction:
    def _store(self, tmp_path, program, mtime):
        key = exploration_cache_key(program)
        path = store_graph(explore(program), tmp_path, key)
        os.utime(path, (mtime, mtime))
        return path

    def test_none_budget_is_unbounded(self, tmp_path):
        self._store(tmp_path, p2(5), 1000)
        assert evict_cache(tmp_path, None) == []
        assert list(tmp_path.glob("graph-*.json"))

    def test_oldest_entries_evicted_first(self, tmp_path):
        oldest = self._store(tmp_path, p2(5), 1000)
        middle = self._store(tmp_path, p2(6), 2000)
        newest = self._store(tmp_path, p2(7), 3000)
        budget_mb = newest.stat().st_size / (1024 * 1024)
        removed = evict_cache(tmp_path, budget_mb)
        assert removed == [oldest, middle]
        assert newest.exists()

    def test_load_touches_recency(self, tmp_path):
        a = self._store(tmp_path, p2(5), 1000)
        b = self._store(tmp_path, p2(6), 2000)
        # Loading the older entry marks it recently used...
        key = exploration_cache_key(p2(5))
        assert load_cached_graph(p2(5), tmp_path, key) is not None
        assert a.stat().st_mtime > b.stat().st_mtime
        # ...so the *other* entry is now the LRU victim.
        budget_mb = a.stat().st_size / (1024 * 1024)
        assert evict_cache(tmp_path, budget_mb) == [b]
        assert a.exists()

    def test_budget_is_a_hard_cap(self, tmp_path):
        only = self._store(tmp_path, p2(5), 1000)
        assert evict_cache(tmp_path, 1e-9) == [only]
        assert not only.exists()

    def test_corrupt_entries_are_ordinary_victims(self, tmp_path):
        junk = tmp_path / ("graph-" + "f" * 64 + ".json")
        junk.write_text("{ not json")
        os.utime(junk, (500, 500))
        keeper = self._store(tmp_path, p2(5), 2000)
        budget_mb = keeper.stat().st_size / (1024 * 1024)
        assert evict_cache(tmp_path, budget_mb) == [junk]
        assert keeper.exists()

    def test_vanished_entry_is_tolerated(self, tmp_path, monkeypatch):
        victim = self._store(tmp_path, p2(5), 1000)
        keeper = self._store(tmp_path, p2(6), 2000)
        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            if self == victim:
                real_unlink(self)  # somebody else deleted it first
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        removed = evict_cache(tmp_path, 1e-9)
        assert victim in removed and keeper in removed
        assert not victim.exists() and not keeper.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert evict_cache(tmp_path / "never-created", 1.0) == []

    def test_explore_with_cache_trims_after_store(self, tmp_path):
        self._store(tmp_path, p2(5), 1000)
        graph, hit = explore_with_cache(
            p2(50), cache_dir=tmp_path, cache_max_mb=1e-9
        )
        assert not hit
        # The budget is tiny: nothing survives, including the new entry.
        assert list(tmp_path.glob("graph-*.json")) == []
