"""The cross-run on-disk graph cache: bit-identity, keying, robustness."""

import json

import pytest

from repro.engine import (
    exploration_cache_key,
    explore_with_cache,
    load_cached_graph,
    store_graph,
)
from repro.gcl import Program, parse_program
from repro.ts import explore
from repro.workloads import counter_grid, modulus_chain, p2


def _fingerprint(graph):
    return (
        list(graph.states),
        list(graph.transitions),
        [graph.enabled_at(i) for i in range(len(graph))],
        list(graph.initial_indices),
        sorted(graph.frontier),
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [lambda: p2(5), lambda: counter_grid(3, 3),
                    lambda: modulus_chain(2)],
        ids=["p2", "grid", "chain"],
    )
    def test_reload_is_bit_identical(self, factory, tmp_path):
        program = factory()
        graph, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert not hit
        reloaded, hit = explore_with_cache(factory(), cache_dir=tmp_path)
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)
        # The reloaded graph is attached to the *new* program instance.
        assert reloaded.system is not graph.system

    def test_bounded_exploration_round_trips_frontier(self, tmp_path):
        program = p2(50)
        graph, hit = explore_with_cache(
            program, max_states=10, cache_dir=tmp_path
        )
        assert not hit
        assert graph.frontier  # the bound actually truncated something
        reloaded, hit = explore_with_cache(
            p2(50), max_states=10, cache_dir=tmp_path
        )
        assert hit
        assert _fingerprint(reloaded) == _fingerprint(graph)

    def test_none_cache_dir_is_plain_exploration(self):
        graph, hit = explore_with_cache(p2(5), cache_dir=None)
        assert not hit
        assert _fingerprint(graph) == _fingerprint(explore(p2(5)))


class TestCacheKey:
    def test_insensitive_to_formatting(self):
        dense = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        spaced = parse_program(
            """
            program T
            var x := 0
            do
                a: x < 3 -> x := x + 1
            od
            """
        )
        assert exploration_cache_key(dense) == exploration_cache_key(spaced)

    def test_sensitive_to_program_semantics(self):
        base = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        changed = parse_program(
            "program T var x := 0 do a: x < 4 -> x := x + 1 od"
        )
        assert exploration_cache_key(base) != exploration_cache_key(changed)

    def test_sensitive_to_bounds(self):
        program = p2(5)
        keys = {
            exploration_cache_key(program),
            exploration_cache_key(program, max_states=10),
            exploration_cache_key(program, max_depth=10),
            exploration_cache_key(program, max_states=10, max_depth=10),
        }
        assert len(keys) == 4

    def test_different_bounds_do_not_share_entries(self, tmp_path):
        explore_with_cache(p2(50), max_states=10, cache_dir=tmp_path)
        graph, hit = explore_with_cache(p2(50), cache_dir=tmp_path)
        assert not hit  # unbounded run must not reuse the truncated graph
        assert not graph.frontier


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        graph = explore(program)
        path = store_graph(graph, tmp_path, key)
        path.write_text("{ not json")
        assert load_cached_graph(p2(5), tmp_path, key) is None
        # explore_with_cache recovers by re-exploring and re-storing.
        reloaded, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert not hit
        assert _fingerprint(reloaded) == _fingerprint(graph)
        again, hit = explore_with_cache(p2(5), cache_dir=tmp_path)
        assert hit

    def test_version_mismatch_is_a_miss(self, tmp_path):
        program = p2(5)
        key = exploration_cache_key(program)
        path = store_graph(explore(program), tmp_path, key)
        payload = json.loads(path.read_text())
        payload["format"] = -1
        path.write_text(json.dumps(payload))
        assert load_cached_graph(p2(5), tmp_path, key) is None

    def test_entry_for_other_program_is_a_miss(self, tmp_path):
        key = exploration_cache_key(p2(5))
        store_graph(explore(p2(5)), tmp_path, key)
        # Same key on disk, but the program shape disagrees: reject.
        assert load_cached_graph(counter_grid(2, 2), tmp_path, key) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert load_cached_graph(p2(5), tmp_path, "0" * 64) is None

    def test_only_programs_are_cacheable(self, tmp_path):
        from repro.workloads import nested_rings

        graph = explore(nested_rings(2))
        with pytest.raises(TypeError):
            store_graph(graph, tmp_path, "0" * 64)

    def test_no_temp_files_left_behind(self, tmp_path):
        explore_with_cache(p2(5), cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestSuccessorCacheStats:
    def test_exploration_populates_then_hits(self):
        program = counter_grid(3, 3)
        explore(program)
        hits, misses = program.successor_cache_stats()
        assert misses > 0
        explore(program)
        hits_after, misses_after = program.successor_cache_stats()
        assert misses_after == misses  # second pass re-executes nothing
        assert hits_after > hits
        program.clear_successor_cache()
        assert program.successor_cache_stats() == (0, 0)
