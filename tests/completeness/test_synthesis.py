"""Tests for automatic measure synthesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.completeness import (
    NotFairlyTerminatingError,
    synthesize_measure,
)
from repro.fairness import STRONG_FAIRNESS, check_fair_termination
from repro.measures import check_measure
from repro.ts import ExplicitSystem, explore
from repro.workloads import (
    counter_grid,
    dining_philosophers,
    distractor_loop,
    modulus_chain,
    mutual_exclusion,
    nested_rings,
    p2,
    p4_bounded,
    random_system,
    token_ring,
)


def synthesize_and_verify(graph):
    synthesis = synthesize_measure(graph)
    result = check_measure(graph, synthesis.assignment())
    result.raise_if_failed()
    return synthesis, result


class TestOnKnownPrograms:
    @pytest.mark.parametrize(
        "system",
        [
            p2(6),
            p4_bounded(2, 10, 5),
            counter_grid(3, 3),
            distractor_loop(4, 3),
            modulus_chain(2),
            dining_philosophers(3),
            mutual_exclusion(2, 2),
            token_ring(5),
        ],
        ids=[
            "p2",
            "p4b",
            "grid",
            "distractors",
            "chain",
            "philosophers",
            "mutex",
            "ring",
        ],
    )
    def test_synthesis_verifies(self, system):
        graph = explore(system)
        synthesis, result = synthesize_and_verify(graph)
        assert result.is_fair_termination_measure

    def test_stack_height_bound(self):
        for system in [p2(4), p4_bounded(2, 6, 3), nested_rings(4)]:
            graph = explore(system)
            synthesis, _ = synthesize_and_verify(graph)
            assert synthesis.max_stack_height() <= len(system.commands()) + 1

    def test_nested_rings_heights_grow_linearly(self):
        heights = []
        for depth in (0, 1, 2, 3, 4):
            graph = explore(nested_rings(depth))
            synthesis, _ = synthesize_and_verify(graph)
            heights.append(synthesis.max_stack_height())
        assert heights == [2, 3, 4, 5, 6]  # depth + 2

    def test_distractor_count_does_not_deepen_stack(self):
        for distractors in (1, 3, 6):
            graph = explore(distractor_loop(3, distractors))
            synthesis, _ = synthesize_and_verify(graph)
            assert synthesis.max_stack_height() == 2

    def test_region_tree_reported(self):
        graph = explore(nested_rings(2))
        synthesis, _ = synthesize_and_verify(graph)
        assert synthesis.region_count() >= 3
        root = synthesis.regions[0]
        assert root.helpful == "exit_2"
        assert root.children[0].helpful == "exit_1"


class TestFailures:
    def test_spin_raises_with_witness(self):
        spin = ExplicitSystem(("go",), [0], [(0, "go", 0)])
        graph = explore(spin)
        with pytest.raises(NotFairlyTerminatingError) as info:
            synthesize_measure(graph)
        witness = info.value.witness
        assert witness is not None
        assert STRONG_FAIRNESS.is_fair(
            witness.lasso, spin.enabled, spin.commands()
        )

    def test_incomplete_graph_rejected(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        graph = explore(up, max_states=5)
        with pytest.raises(ValueError):
            synthesize_measure(graph)


class TestRandomisedRoundTrip:
    @settings(deadline=None, max_examples=80)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_synthesis_agrees_with_checker(self, seed):
        """Soundness and completeness over the random family: synthesis
        succeeds (and its output verifies) exactly when the independent
        fair-cycle decision says the system fairly terminates."""
        graph = explore(random_system(seed, states=10, commands=3, extra_edges=9))
        verdict = check_fair_termination(graph)
        if verdict.fairly_terminates:
            synthesis = synthesize_measure(graph)
            result = check_measure(graph, synthesis.assignment())
            assert result.is_fair_termination_measure
        else:
            with pytest.raises(NotFairlyTerminatingError):
                synthesize_measure(graph)

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_synthesised_heights_respect_bound(self, seed):
        graph = explore(random_system(seed, states=9, commands=4, extra_edges=8))
        if not check_fair_termination(graph).fairly_terminates:
            return
        synthesis = synthesize_measure(graph)
        assert synthesis.max_stack_height() <= 5
