"""Tests for the Theorem 2 quotient."""

import pytest

from repro.completeness import theorem2_quotient
from repro.completeness.quotient import HeightTotalOrder
from repro.workloads import p1, p2, p4_bounded


class TestHeightTotalOrder:
    def test_total_on_distinct_values(self):
        order = HeightTotalOrder({0: 2, 1: 0, 2: 0})
        assert order.gt(0, 1)  # higher descent height
        assert order.gt(2, 1) or order.gt(1, 2)  # ties broken, still total
        assert not order.gt(1, 1)

    def test_extends_height(self):
        order = HeightTotalOrder({0: 3, 1: 1})
        assert order.gt(0, 1)
        assert not order.gt(1, 0)

    def test_membership(self):
        order = HeightTotalOrder({0: 0})
        assert order.contains(0)
        assert not order.contains(99)


class TestQuotient:
    def test_exact_on_strongly_terminating_program(self):
        result = theorem2_quotient(p1(4), max_depth=10)
        assert result.exact
        verification = result.verify()
        assert verification.is_fair_termination_measure

    def test_p2_quotient_verifies_at_increasing_depths(self):
        for depth in (10, 12, 14):
            result = theorem2_quotient(p2(4), max_depth=depth)
            verification = result.verify()
            assert verification.ok, (depth, verification.violations[:2])

    def test_p4_bounded_quotient_verifies(self):
        result = theorem2_quotient(p4_bounded(2, 4, 2), max_depth=14)
        assert result.verify().ok

    def test_frontier_candidates_chase_phantom_minima(self):
        # The module docstring's phenomenon, pinned down: letting the
        # minimum range over frontier histories (candidate_depth =
        # max_depth) breaks the verification conditions on P4b, because
        # frontier values still have apparent height 0.
        result = theorem2_quotient(
            p4_bounded(2, 4, 2), max_depth=14, candidate_depth=14
        )
        assert not result.verify().ok

    def test_stacks_have_full_height(self):
        result = theorem2_quotient(p2(3), max_depth=8)
        for stack in result.stacks.values():
            assert stack.height == 3  # T + 2 commands

    def test_minimiser_depths_recorded(self):
        result = theorem2_quotient(p2(3), max_depth=8)
        assert set(result.minimiser_depth) == set(range(len(result.base_graph)))
        assert min(result.minimiser_depth.values()) == 0  # the initial state

    def test_insufficient_depth_reported(self):
        with pytest.raises(ValueError):
            theorem2_quotient(p2(10), max_depth=3)

    def test_quotient_subjects_consistent_with_tree(self):
        # Claim 3's shadow: the quotient stack's subject order comes from a
        # real tree node whose values it carries.
        result = theorem2_quotient(p2(3), max_depth=8)
        tree_vectors = {
            result.tree_measure.value_vector(i): result.tree_measure.subject_vector(i)
            for i in range(len(result.tree_graph))
        }
        for stack in result.stacks.values():
            vector = tuple(h.value for h in stack)
            assert tree_vectors[vector] == stack.subjects()
