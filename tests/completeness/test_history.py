"""Tests for the history-variable transformation."""

from repro.completeness import HistorySystem, add_history_variable, is_tree_like
from repro.ts import ExplicitSystem, explore
from repro.workloads import p2


class TestHistorySystem:
    def test_states_are_paths(self):
        history = add_history_variable(p2(3))
        (root,) = list(history.initial_states())
        assert len(root) == 1
        for command, target in history.post(root):
            assert len(target) == 2
            assert target[0] == root[0]

    def test_projection(self):
        program = p2(3)
        history = add_history_variable(program)
        (root,) = list(history.initial_states())
        command, child = next(iter(history.post(root)))
        assert HistorySystem.current(child) == child[-1][1]
        assert HistorySystem.executed(child) == command
        assert HistorySystem.executed(root) is None

    def test_enabled_matches_base(self):
        program = p2(3)
        history = add_history_variable(program)
        (root,) = list(history.initial_states())
        assert history.enabled(root) == program.enabled(root[0][1])

    def test_commands_unchanged(self):
        program = p2(3)
        assert add_history_variable(program).commands() == program.commands()

    def test_unwinding_is_tree_like(self):
        graph = explore(add_history_variable(p2(3)), max_depth=5)
        assert is_tree_like(graph)

    def test_base_graph_usually_not_tree_like(self):
        graph = explore(p2(3))
        # P2's graph has the lb self-loops: states with several predecessors.
        assert not is_tree_like(graph)

    def test_transition_counts_match_base_fanout(self):
        program = p2(2)
        history = add_history_variable(program)
        (root,) = list(history.initial_states())
        assert len(list(history.post(root))) == len(list(program.post(root[0][1])))


class TestIsTreeLike:
    def test_chain_is_tree_like(self):
        chain = ExplicitSystem(("a",), [0], [(0, "a", 1), (1, "a", 2)])
        assert is_tree_like(explore(chain))

    def test_diamond_is_not(self):
        diamond = ExplicitSystem(
            ("a", "b"),
            [0],
            [(0, "a", 1), (0, "b", 2), (1, "a", 3), (2, "a", 3)],
        )
        assert not is_tree_like(explore(diamond))

    def test_self_loop_on_root_is_not(self):
        loop = ExplicitSystem(("a",), [0], [(0, "a", 0)])
        assert not is_tree_like(explore(loop))

    def test_forest_accepted(self):
        forest = ExplicitSystem(
            ("a",), [0, 10], [(0, "a", 1), (10, "a", 11)]
        )
        assert is_tree_like(explore(forest))
