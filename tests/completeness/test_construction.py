"""Tests for the Theorem 3 construction (Figures 3–5)."""

import pytest

from repro.completeness import (
    NotTreeLikeError,
    add_history_variable,
    longest_chain_length,
    theorem3_construction,
)
from repro.measures import TERMINATION
from repro.ts import ExplicitSystem, explore
from repro.workloads import p2, p3_bounded, p4_bounded


def unwind(system, depth):
    return explore(add_history_variable(system), max_depth=depth)


class TestInitialStack:
    def test_figure_3_shape(self):
        graph = unwind(p2(3), 2)
        measure = theorem3_construction(graph)
        root_stack = measure.stacks[0]
        # T at level 0 and one hypothesis per command at levels 1..N.
        assert root_stack.subjects() == (TERMINATION, "la", "lb")
        # N + 1 fresh elements, no descents yet at the root.
        values = [h.value for h in root_stack]
        assert values == [0, 1, 2]

    def test_iota_lambda_bookkeeping(self):
        graph = unwind(p2(3), 2)
        measure = theorem3_construction(graph)
        for value in range(3):
            assert measure.iota[value] == 0  # created at the root
            assert measure.lam[value] == value


class TestCases:
    def test_case1_preserves_below_and_freshens_above(self):
        # On P2, an lb-step has la naturally active at level 1 (la enabled):
        # the T-value is preserved, la and lb take fresh values.
        graph = unwind(p2(3), 3)
        measure = theorem3_construction(graph)
        for t in graph.transitions:
            if t.command != "lb":
                continue
            parent, child = measure.stacks[t.source], measure.stacks[t.target]
            assert parent.level(0) == child.level(0)
            assert child.level(1).subject == parent.level(1).subject
            assert child.level(1).value != parent.level(1).value
            break
        else:
            pytest.fail("no lb transition found")

    def test_case2_records_descent_and_rotates(self):
        # On P2, an la-step forces T active: T gets a fresh smaller value and
        # the hypotheses above rotate — la moves to the top.
        graph = unwind(p2(3), 3)
        measure = theorem3_construction(graph)
        order = measure.order
        for t in graph.transitions:
            if t.command != "la":
                continue
            parent, child = measure.stacks[t.source], measure.stacks[t.target]
            assert order.gt(parent.level(0).value, child.level(0).value)
            assert child.subjects()[-1] == "la"  # executed moved to the top
            break
        else:
            pytest.fail("no la transition found")

    def test_case_statistics_cover_all_transitions(self):
        graph = unwind(p2(3), 4)
        measure = theorem3_construction(graph)
        assert (
            measure.stats.case1_total + measure.stats.case2_total
            == len(graph.transitions)
        )

    def test_stack_height_constant_n_plus_1(self):
        graph = unwind(p4_bounded(2, 6, 3), 4)
        measure = theorem3_construction(graph)
        for stack in measure.stacks:
            assert stack.height == 4  # N = 3 commands


class TestVerification:
    @pytest.mark.parametrize(
        "program, depth",
        [
            (p2(3), 6),
            (p3_bounded(2, 7, 3), 6),
            (p4_bounded(2, 5, 3), 5),
        ],
    )
    def test_constructed_measure_satisfies_conditions(self, program, depth):
        graph = unwind(program, depth)
        measure = theorem3_construction(graph)
        result = measure.verify()
        assert result.ok, result.violations[:2]

    def test_relation_always_acyclic_on_finite_region(self):
        graph = unwind(p2(4), 6)
        measure = theorem3_construction(graph)
        assert measure.order.is_well_founded()

    def test_claim_1_preserved_values_keep_position(self):
        # "If p → p', ι(w) ≠ p', and μ^α(p') = w, then μ^α(p) = w and the
        # position of the α-hypothesis did not change."
        graph = unwind(p4_bounded(2, 5, 3), 5)
        measure = theorem3_construction(graph)
        for t in graph.transitions:
            child_stack = measure.stacks[t.target]
            parent_stack = measure.stacks[t.source]
            for level, hypothesis in enumerate(child_stack):
                if measure.iota[hypothesis.value] == t.target:
                    continue  # freshly created here
                assert parent_stack.level(level) == hypothesis

    def test_chain_growth_spin_vs_p2(self):
        spin = ExplicitSystem(("go",), [0], [(0, "go", 0)])
        spin_chains = []
        p2_chains = []
        for depth in (3, 6, 9):
            spin_chains.append(
                longest_chain_length(
                    theorem3_construction(unwind(spin, depth)).relation
                )
            )
            p2_chains.append(
                longest_chain_length(
                    theorem3_construction(unwind(p2(2), depth)).relation
                )
            )
        # Spin's descents grow with depth (no well-founded limit exists);
        # P2's T-descents are capped by y − x (+1 for the frontier row).
        assert spin_chains == [4, 7, 10]
        assert max(p2_chains) <= 3


class TestPreconditions:
    def test_non_tree_like_rejected(self):
        graph = explore(p2(3))
        with pytest.raises(NotTreeLikeError):
            theorem3_construction(graph)
