"""Tests for the Theorem 4 semi-measure."""

import pytest

from repro.completeness import (
    add_history_variable,
    semi_measure,
    theorem3_construction,
)
from repro.ts import ExplicitSystem, Path, explore
from repro.workloads import p2


def spin():
    return ExplicitSystem(("go",), [0], [(0, "go", 0)])


class TestLazyStackComputation:
    def test_root_stack(self):
        program = p2(3)
        sm = semi_measure(program)
        (initial,) = list(program.initial_states())
        stack = sm.stack_of(Path.singleton(initial))
        assert stack.subjects() == ("T", "la", "lb")

    def test_memoisation_returns_same_object(self):
        program = p2(3)
        sm = semi_measure(program)
        (initial,) = list(program.initial_states())
        run = Path.singleton(initial)
        assert sm.stack_of(run) is sm.stack_of(run)

    def test_matches_batch_construction(self):
        """Lazily computed stacks agree with the batch Theorem 3 run."""
        program = p2(2)
        graph = explore(add_history_variable(program), max_depth=4)
        batch = theorem3_construction(graph)
        sm = semi_measure(program)
        # Walk the tree in the same BFS order so `new` allocations align.
        for index in range(len(graph)):
            sigma = graph.state_of(index)
            # The history records (command, state) pairs — exactly a run.
            states = tuple(state for _, state in sigma)
            commands = tuple(command for command, _ in sigma[1:])
            run = Path(states, commands)
            lazy = sm.stack_of(run)
            assert lazy.subjects() == batch.stacks[index].subjects()

    def test_invalid_transition_rejected(self):
        program = p2(3)
        sm = semi_measure(program)
        (initial,) = list(program.initial_states())
        bogus = Path.singleton(initial).extend("la", initial)  # la changes x
        with pytest.raises(ValueError):
            sm.stack_of(bogus)

    def test_non_initial_root_rejected(self):
        program = p2(3)
        sm = semi_measure(program)
        with pytest.raises(ValueError):
            sm.stack_of(Path.singleton(program.state(x=1, y=3)))

    def test_descends_is_recursive_in_explored_region(self):
        sm = semi_measure(spin())
        run = Path.singleton(0)
        first = sm.stack_of(run)
        run2 = run.extend("go", 0)
        second = sm.stack_of(run2)
        # Each go-step forces the T-hypothesis: values descend.
        assert sm.descends(first.level(0).value, second.level(0).value)
        assert not sm.descends(second.level(0).value, first.level(0).value)

    def test_iota_lam_exposed(self):
        program = p2(3)
        sm = semi_measure(program)
        (initial,) = list(program.initial_states())
        stack = sm.stack_of(Path.singleton(initial))
        value = stack.level(1).value
        assert sm.lam(value) == 1
        assert sm.iota(value) == ((initial,), ())


class TestAudit:
    def test_spin_chains_grow_linearly(self):
        lengths = [semi_measure(spin()).audit(depth).longest_chain for depth in (3, 6, 9)]
        assert lengths == [3, 6, 9]

    def test_p2_chains_plateau(self):
        # T descends on each la step *and* on the lb step that follows an
        # la (the Case 2 rotation leaves lb just above T), so the plateau
        # is 2·(y−x) − 1 — but crucially it is a plateau, unlike Spin.
        lengths = [
            semi_measure(p2(2)).audit(depth).longest_chain for depth in (4, 6, 8)
        ]
        assert lengths[0] == lengths[1] == lengths[2]
        assert max(lengths) <= 2 * 2 - 1

    def test_explored_region_always_well_founded(self):
        # The Π¹₁ hardness lives in the limit; any finite region is a DAG.
        report = semi_measure(spin()).audit(5)
        assert report.well_founded_so_far

    def test_audit_counts(self):
        report = semi_measure(p2(2)).audit(3)
        assert report.runs_explored > 0
        assert report.values_allocated >= 3
        assert report.descent_edges >= 1

    def test_audit_stops_at_terminal_frontier(self):
        chain = ExplicitSystem(("a",), [0], [(0, "a", 1)])
        report = semi_measure(chain).audit(10)
        assert report.runs_explored == 2  # root and one extension
