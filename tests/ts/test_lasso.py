"""Tests for paths, lassos and witness-building helpers."""

import pytest

from repro.ts import (
    ExplicitSystem,
    Lasso,
    Path,
    cycle_through_all,
    explore,
    find_path_indices,
    lasso_from_indices,
)


class TestPath:
    def test_arity_invariant(self):
        with pytest.raises(ValueError):
            Path(states=(1, 2), commands=())

    def test_singleton(self):
        path = Path.singleton("s")
        assert len(path) == 0
        assert path.first == path.last == "s"

    def test_extend(self):
        path = Path.singleton(0).extend("a", 1).extend("b", 2)
        assert path.states == (0, 1, 2)
        assert path.commands == ("a", "b")

    def test_transitions(self):
        path = Path.singleton(0).extend("a", 1)
        (t,) = list(path.transitions())
        assert (t.source, t.command, t.target) == (0, "a", 1)


class TestLasso:
    def good(self):
        stem = Path.singleton(0).extend("a", 1)
        cycle = Path((1, 2, 1), ("b", "c"))
        return Lasso(stem=stem, cycle=cycle)

    def test_structure_validated(self):
        with pytest.raises(ValueError):
            Lasso(stem=Path.singleton(0), cycle=Path.singleton(0))  # empty cycle
        with pytest.raises(ValueError):
            Lasso(
                stem=Path.singleton(0),
                cycle=Path((1, 2, 1), ("b", "c")),  # stem ends elsewhere
            )
        with pytest.raises(ValueError):
            Lasso(
                stem=Path.singleton(1),
                cycle=Path((1, 2, 3), ("b", "c")),  # cycle not closed
            )

    def test_executed_infinitely_often(self):
        assert self.good().executed_infinitely_often() == frozenset({"b", "c"})

    def test_cycle_states_drop_duplicate_knot(self):
        assert self.good().cycle_states() == (1, 2)

    def test_prefix_unrolls_cycle(self):
        prefix = self.good().prefix(5)
        assert prefix.commands == ("a", "b", "c", "b", "c")
        assert prefix.states == (0, 1, 2, 1, 2, 1)

    def test_describe_mentions_loop(self):
        assert "loop" in self.good().describe()


def fixture_graph():
    system = ExplicitSystem(
        commands=("a", "b"),
        initial=[0],
        transitions=[
            (0, "a", 1),
            (1, "a", 2),
            (2, "b", 1),
            (1, "b", 1),
        ],
    )
    return explore(system)


class TestWitnessHelpers:
    def test_find_path(self):
        graph = fixture_graph()
        path = find_path_indices(graph, [0], graph.index_of(2))
        assert [t.command for t in path] == ["a", "a"]

    def test_find_path_respects_allowed(self):
        graph = fixture_graph()
        i1, i2 = graph.index_of(1), graph.index_of(2)
        with pytest.raises(ValueError):
            find_path_indices(graph, [0], i2, allowed=[0, i1])

    def test_find_path_to_self_is_empty(self):
        graph = fixture_graph()
        assert find_path_indices(graph, [0], 0) == []

    def test_cycle_through_all_covers_every_internal_transition(self):
        graph = fixture_graph()
        component = [graph.index_of(1), graph.index_of(2)]
        tour = cycle_through_all(graph, component)
        taken = {(t.source, t.command, t.target) for t in tour}
        internal = {
            (t.source, t.command, t.target)
            for t in graph.transitions
            if t.source in set(component) and t.target in set(component)
        }
        assert internal <= taken
        # And it is a closed walk.
        assert tour[0].source == tour[-1].target

    def test_cycle_through_all_needs_internal_transition(self):
        graph = fixture_graph()
        with pytest.raises(ValueError):
            cycle_through_all(graph, [graph.index_of(0)])

    def test_lasso_from_indices(self):
        graph = fixture_graph()
        component = [graph.index_of(1), graph.index_of(2)]
        tour = cycle_through_all(graph, component)
        stem = find_path_indices(graph, [0], tour[0].source)
        lasso = lasso_from_indices(graph, stem, tour)
        assert lasso.stem.first == 0
        assert lasso.cycle.first == lasso.cycle.last

    def test_lasso_from_indices_rejects_broken_chain(self):
        graph = fixture_graph()
        t_a = graph.outgoing(0)[0]
        with pytest.raises(ValueError):
            lasso_from_indices(graph, [], [t_a, t_a])
