"""Tests for explicit transition systems and validation."""

import pytest

from repro.ts import ExplicitSystem, RenamedSystem, Transition


def tiny():
    return ExplicitSystem(
        commands=("a", "b"),
        initial=[0],
        transitions=[(0, "a", 1), (0, "b", 0), (1, "a", 2)],
    )


class TestExplicitSystem:
    def test_commands(self):
        assert tiny().commands() == ("a", "b")

    def test_enabled_derived_from_transitions(self):
        system = tiny()
        assert system.enabled(0) == frozenset({"a", "b"})
        assert system.enabled(1) == frozenset({"a"})
        assert system.enabled(2) == frozenset()

    def test_post(self):
        assert set(tiny().post(0)) == {("a", 1), ("b", 0)}

    def test_is_terminal(self):
        assert tiny().is_terminal(2)
        assert not tiny().is_terminal(0)

    def test_transitions_from(self):
        transitions = list(tiny().transitions_from(1))
        assert transitions == [Transition(1, "a", 2)]

    def test_unknown_command_in_transition_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSystem(("a",), [0], [(0, "zz", 1)])

    def test_explicit_enabled_must_cover_executed(self):
        with pytest.raises(ValueError):
            ExplicitSystem(
                ("a",), [0], [(0, "a", 1)], enabled={0: frozenset()}
            )

    def test_enabled_without_transition_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSystem(
                ("a", "b"),
                [0],
                [(0, "a", 1)],
                enabled={0: frozenset({"a", "b"})},
            )

    def test_duplicate_commands_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSystem(("a", "a"), [0], [(0, "a", 0)])

    def test_empty_commands_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSystem((), [0], [])

    def test_known_states_includes_targets(self):
        assert tiny().known_states == frozenset({0, 1, 2})


class TestRenamedSystem:
    def test_states_mapped_through(self):
        renamed = RenamedSystem(
            tiny(), rename=lambda s: f"s{s}", unrename=lambda s: int(s[1:])
        )
        assert list(renamed.initial_states()) == ["s0"]
        assert set(renamed.post("s0")) == {("a", "s1"), ("b", "s0")}
        assert renamed.enabled("s1") == frozenset({"a"})

    def test_non_inverse_rename_detected(self):
        renamed = RenamedSystem(
            tiny(), rename=lambda s: "same", unrename=lambda s: 0
        )
        with pytest.raises(ValueError):
            list(renamed.post("other"))
