"""Tests for interleaving composition and guarded overlays."""

import pytest

from repro.ts import ExplicitSystem, GuardedOverlay, InterleavingComposition, explore


def toggler():
    return ExplicitSystem(
        commands=("flip",),
        initial=["off"],
        transitions=[("off", "flip", "on"), ("on", "flip", "off")],
    )


def one_shot():
    return ExplicitSystem(
        commands=("go",),
        initial=["ready"],
        transitions=[("ready", "go", "done")],
    )


class TestInterleavingComposition:
    def test_commands_are_prefixed(self):
        composed = InterleavingComposition([("p", toggler()), ("q", one_shot())])
        assert composed.commands() == ("p.flip", "q.go")

    def test_initial_states_are_products(self):
        composed = InterleavingComposition([("p", toggler()), ("q", one_shot())])
        assert list(composed.initial_states()) == [("off", "ready")]

    def test_one_component_moves_per_step(self):
        composed = InterleavingComposition([("p", toggler()), ("q", one_shot())])
        posts = dict(composed.post(("off", "ready")))
        assert posts["p.flip"] == ("on", "ready")
        assert posts["q.go"] == ("off", "done")

    def test_state_space_size(self):
        composed = InterleavingComposition([("p", toggler()), ("q", toggler())])
        graph = explore(composed)
        assert len(graph) == 4

    def test_shared_guard_vetoes(self):
        # q.go only allowed once p is on.
        def guard(state, name, label):
            if name == "q" and label == "go":
                return state[0] == "on"
            return True

        composed = InterleavingComposition(
            [("p", toggler()), ("q", one_shot())], shared_guard=guard
        )
        assert composed.enabled(("off", "ready")) == frozenset({"p.flip"})
        assert "q.go" in composed.enabled(("on", "ready"))

    def test_duplicate_process_names_rejected(self):
        with pytest.raises(ValueError):
            InterleavingComposition([("p", toggler()), ("p", toggler())])

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            InterleavingComposition([])


class TestGuardedOverlay:
    def test_restriction_prunes(self):
        base = toggler()
        overlay = GuardedOverlay(base, lambda state, cmd: state == "off")
        assert overlay.enabled("off") == frozenset({"flip"})
        assert overlay.enabled("on") == frozenset()
        assert list(overlay.post("on")) == []

    def test_commands_unchanged(self):
        overlay = GuardedOverlay(toggler(), lambda state, cmd: True)
        assert overlay.commands() == ("flip",)
