"""The exploration observer protocol and its cancellation signal.

Contract (see ``docs/METHOD.md`` §11): ``on_state`` fires at interning
time in index order (initial states first, at depth 0), ``on_transition``
fires as each kept transition is recorded (contiguous per source),
``on_expanded`` fires exactly once per *fully expanded* source — i.e.
exactly the states whose transitions survive into the graph — and the
whole event stream is bit-identical between the serial and the sharded
explorer.  Raising :class:`StopExploration` from any callback stops
exploration cleanly: the graph stays well-formed, half-expanded states
revert to the frontier, and a sharded run stops within one BFS round.
"""

import pytest

from repro.engine.shard import graph_digest
from repro.telemetry import core as telemetry
from repro.ts import ExplorationObserver, StopExploration, explore
from repro.workloads import (
    counter_grid,
    dining_philosophers,
    distractor_loop,
    modulus_chain,
    nested_rings,
)

JOB_COUNTS = (2, 4)

FAMILIES = [
    ("grid", lambda: counter_grid(5, 5)),
    ("chain", lambda: modulus_chain(2, fuel=3)),
    ("rings", lambda: nested_rings(3)),
    ("distractors", lambda: distractor_loop(2, 2)),
    ("philosophers", lambda: dining_philosophers(3)),
]


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


class Recorder(ExplorationObserver):
    """Records the full event stream as comparable tuples."""

    def __init__(self):
        self.events = []

    def on_state(self, index, state, depth):
        self.events.append(("state", index, state, depth))

    def on_transition(self, source, command, target):
        self.events.append(("transition", source, command, target))

    def on_expanded(self, index, enabled):
        self.events.append(("expanded", index, enabled))


class StopAfterStates(ExplorationObserver):
    """Stops once ``limit`` states have been discovered."""

    def __init__(self, limit):
        self.limit = limit
        self.depths = {}
        self.stop_depth = None

    def on_state(self, index, state, depth):
        self.depths[index] = depth
        if len(self.depths) >= self.limit:
            self.stop_depth = depth
            raise StopExploration(f"saw {len(self.depths)} states")


class TestEventStream:
    @pytest.mark.parametrize("name,make", FAMILIES)
    def test_events_match_graph(self, name, make):
        recorder = Recorder()
        graph = explore(make(), observer=recorder)
        states = [e for e in recorder.events if e[0] == "state"]
        transitions = [e for e in recorder.events if e[0] == "transition"]
        expanded = [e for e in recorder.events if e[0] == "expanded"]
        # Every state reported once, in interning (index) order.
        assert [e[1] for e in states] == list(range(len(graph)))
        assert all(graph.state_of(e[1]) == e[2] for e in states)
        # Initial states lead, at depth 0.
        initials = len(graph.initial_indices)
        assert [e[1] for e in states[:initials]] == list(graph.initial_indices)
        assert all(e[3] == 0 for e in states[:initials])
        # Transitions: exactly the kept ones, in graph order.
        assert [
            (e[1], e[2], e[3]) for e in transitions
        ] == [(t.source, t.command, t.target) for t in graph.transitions]
        # Expanded: exactly the non-frontier states, with their enabled sets.
        assert {e[1] for e in expanded} == (
            set(range(len(graph))) - set(graph.frontier)
        )
        assert all(
            e[2] == frozenset(graph.enabled_at(e[1])) for e in expanded
        )

    @pytest.mark.parametrize("name,make", FAMILIES)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_sharded_stream_identical(self, force_parallel, name, make, jobs):
        serial, sharded = Recorder(), Recorder()
        g1 = explore(make(), observer=serial)
        g2 = explore(make(), n_jobs=jobs, observer=sharded)
        assert graph_digest(g1) == graph_digest(g2)
        assert serial.events == sharded.events

    @pytest.mark.parametrize("jobs", (None,) + JOB_COUNTS)
    def test_bounded_stream_identical(self, force_parallel, jobs):
        serial = Recorder()
        explore(counter_grid(6, 6), max_states=17, observer=serial)
        other = Recorder()
        explore(counter_grid(6, 6), max_states=17, n_jobs=jobs, observer=other)
        assert serial.events == other.events

    def test_noop_observer_leaves_graph_unchanged(self):
        bare = explore(counter_grid(5, 5))
        observed = explore(counter_grid(5, 5), observer=ExplorationObserver())
        assert graph_digest(bare) == graph_digest(observed)


class TestStopExploration:
    @pytest.mark.parametrize("jobs", (None, 2))
    def test_stop_yields_wellformed_prefix(self, force_parallel, jobs):
        observer = StopAfterStates(10)
        graph = explore(counter_grid(8, 8), n_jobs=jobs, observer=observer)
        assert len(graph) >= 10
        # Every kept transition originates from a fully expanded state and
        # both endpoints are interned — the graph is a usable prefix.
        frontier = set(graph.frontier)
        for t in graph.transitions:
            assert t.source not in frontier
            assert 0 <= t.target < len(graph)

    def test_stop_from_on_expanded_keeps_final_transitions(self):
        class StopOnExpand(ExplorationObserver):
            def __init__(self):
                self.expanded = []
                self.transitions = []

            def on_transition(self, source, command, target):
                self.transitions.append((source, command, target))

            def on_expanded(self, index, enabled):
                self.expanded.append(index)
                if len(self.expanded) >= 3:
                    raise StopExploration()

        observer = StopOnExpand()
        graph = explore(counter_grid(8, 8), observer=observer)
        # Transitions declared final via on_expanded survive into the graph.
        kept = [(t.source, t.command, t.target) for t in graph.transitions]
        frontier = set(graph.frontier)
        assert set(observer.expanded) == set(range(len(graph))) - frontier
        assert [
            t for t in observer.transitions if t[0] in set(observer.expanded)
        ] == kept

    def test_sharded_stop_halts_within_one_round(self, force_parallel):
        """After the stopping round merges, no further round is dispatched:
        BFS rounds are depth layers, so a stop raised at the discovery of a
        depth-``d`` state (during the merge of the round expanding depth
        ``d-1``) must leave every state of depth ``>= d`` unexpanded."""
        telemetry.reset()
        telemetry.enable()
        try:
            observer = StopAfterStates(10)
            graph = explore(counter_grid(10, 10), n_jobs=4, observer=observer)
            counters = telemetry.registry().snapshot()["counters"]
            assert counters.get("stream.stops") == 1
            assert counters.get("stream.states_at_stop") == len(graph)
        finally:
            telemetry.disable()
        assert observer.stop_depth is not None
        frontier = set(graph.frontier)
        expanded_depths = [
            observer.depths[i] for i in range(len(graph)) if i not in frontier
        ]
        assert max(expanded_depths, default=0) < observer.stop_depth

    def test_serial_stop_counters(self):
        telemetry.reset()
        telemetry.enable()
        try:
            graph = explore(
                counter_grid(8, 8), observer=StopAfterStates(10)
            )
            counters = telemetry.registry().snapshot()["counters"]
            assert counters.get("stream.stops") == 1
            assert counters.get("stream.states_at_stop") == len(graph)
        finally:
            telemetry.disable()


class RecordingStopper(Recorder):
    """Records the stream and stops after ``limit`` discovered states —
    the combination that pins *where* a mid-round cancellation lands."""

    def __init__(self, limit):
        super().__init__()
        self.limit = limit
        self.discovered = 0

    def on_state(self, index, state, depth):
        super().on_state(index, state, depth)
        self.discovered += 1
        if self.discovered >= self.limit:
            raise StopExploration(f"saw {self.discovered} states")


class TestStopOnShmPath:
    """Satellite of the zero-copy PR (DESIGN §6f): ``StopExploration``
    raised mid-round on the shared-memory value-plane path must revert
    half-expanded states to the frontier *identically* to the serial
    explorer — same events, same graph, same frontier — and must not
    leak a single shared-memory segment."""

    # Limits chosen to land the stop in the middle of a wide BFS round,
    # i.e. while its merge has finalized some of the round's sources but
    # not others (the half-expanded revert case).
    STOP_LIMITS = (10, 23, 40)

    @pytest.mark.parametrize("limit", STOP_LIMITS)
    def test_midround_stop_reverts_identically(self, force_parallel, limit):
        serial = RecordingStopper(limit)
        g1 = explore(counter_grid(9, 9), observer=serial)
        sharded = RecordingStopper(limit)
        g2 = explore(counter_grid(9, 9), n_jobs=2, observer=sharded)
        assert serial.events == sharded.events
        assert graph_digest(g1) == graph_digest(g2)
        # The revert itself: identical frontier means identical decisions
        # about which half-expanded states were rolled back.
        assert tuple(sorted(g1.frontier)) == tuple(sorted(g2.frontier))
        assert tuple(g1.states) == tuple(g2.states)

    @pytest.mark.parametrize("limit", STOP_LIMITS)
    def test_shm_and_pickled_paths_stop_identically(
        self, force_parallel, monkeypatch, limit
    ):
        shm_side = RecordingStopper(limit)
        g_shm = explore(counter_grid(9, 9), n_jobs=2, observer=shm_side)
        monkeypatch.setenv("REPRO_VALUE_PLANE", "0")
        pickled = RecordingStopper(limit)
        g_pickled = explore(counter_grid(9, 9), n_jobs=2, observer=pickled)
        assert shm_side.events == pickled.events
        assert graph_digest(g_shm) == graph_digest(g_pickled)

    def test_stop_on_shm_path_leaks_no_segments(self, force_parallel):
        import pathlib

        from repro.engine.shm import SEGMENT_PREFIX

        def segments():
            try:
                return sorted(
                    p.name
                    for p in pathlib.Path("/dev/shm").glob(f"{SEGMENT_PREFIX}*")
                )
            except OSError:  # pragma: no cover - no tmpfs
                return []

        before = segments()
        explore(counter_grid(9, 9), n_jobs=2, observer=StopAfterStates(23))
        assert segments() == before

    def test_stop_counters_match_serial_on_shm_path(self, force_parallel):
        results = {}
        for jobs in (None, 2):
            telemetry.reset()
            telemetry.enable()
            try:
                graph = explore(
                    counter_grid(9, 9), n_jobs=jobs,
                    observer=StopAfterStates(23),
                )
                counters = telemetry.registry().snapshot()["counters"]
                results[jobs] = (
                    len(graph),
                    counters.get("stream.stops"),
                    counters.get("stream.states_at_stop"),
                )
            finally:
                telemetry.disable()
        assert results[None] == results[2]
