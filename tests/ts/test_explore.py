"""Tests for reachability exploration and its completeness accounting."""

import pytest

from repro.gcl import parse_program
from repro.ts import ExplicitSystem, ExplorationLimitError, explore


def chain(length):
    return ExplicitSystem(
        commands=("next",),
        initial=[0],
        transitions=[(i, "next", i + 1) for i in range(length)],
    )


class TestCompleteExploration:
    def test_all_states_found(self):
        graph = explore(chain(5))
        assert len(graph) == 6
        assert graph.complete
        assert not graph.frontier

    def test_unreachable_states_excluded(self):
        system = ExplicitSystem(
            commands=("a",),
            initial=[0],
            transitions=[(0, "a", 1), (7, "a", 8)],
        )
        graph = explore(system)
        assert len(graph) == 2
        assert not graph.contains(7)

    def test_discovery_order_is_bfs(self):
        system = ExplicitSystem(
            commands=("a", "b"),
            initial=[0],
            transitions=[(0, "a", 1), (0, "b", 2), (1, "a", 3), (2, "a", 3)],
        )
        graph = explore(system)
        assert list(graph.states) == [0, 1, 2, 3]

    def test_index_round_trip(self):
        graph = explore(chain(3))
        for i in range(len(graph)):
            assert graph.index_of(graph.state_of(i)) == i

    def test_enabled_and_terminal(self):
        graph = explore(chain(2))
        assert graph.enabled_at(0) == frozenset({"next"})
        assert graph.terminal_indices() == [2]
        assert graph.is_terminal(2)

    def test_incoming_outgoing(self):
        graph = explore(chain(2))
        assert len(graph.outgoing(0)) == 1
        assert len(graph.incoming(1)) == 1
        assert graph.outgoing(0)[0].command == "next"

    def test_no_initial_states_rejected(self):
        system = ExplicitSystem(("a",), [], [(0, "a", 1)])
        with pytest.raises(ValueError):
            explore(system)

    def test_multiple_initial_states(self):
        system = ExplicitSystem(
            commands=("a",),
            initial=[0, 10],
            transitions=[(0, "a", 1), (10, "a", 11)],
        )
        graph = explore(system)
        assert list(graph.initial_indices) == [0, 1]


class TestBoundedExploration:
    def test_max_depth_cuts(self):
        graph = explore(chain(10), max_depth=3)
        assert not graph.complete
        assert len(graph) == 5  # depths 0..4 discovered, depth 4 unexpanded
        assert graph.frontier == {4}

    def test_max_states_cuts(self):
        graph = explore(chain(100), max_states=10)
        assert not graph.complete
        assert len(graph) <= 10

    def test_strict_mode_raises(self):
        with pytest.raises(ExplorationLimitError):
            explore(chain(100), max_states=5, strict=True)

    def test_frontier_states_have_no_outgoing(self):
        graph = explore(chain(10), max_depth=3)
        for index in graph.frontier:
            assert not graph.outgoing(index)

    def test_infinite_state_program_bounded(self):
        program = parse_program(
            "program Up var x := 0 do a: true -> x := x + 1 od"
        )
        graph = explore(program, max_states=50)
        assert not graph.complete
        assert len(graph) == 50


class TestDerivedFacts:
    def test_commands_executed_within(self):
        system = ExplicitSystem(
            commands=("stay", "leave"),
            initial=[0],
            transitions=[(0, "stay", 0), (0, "leave", 1)],
        )
        graph = explore(system)
        inside = graph.commands_executed_within({graph.index_of(0)})
        assert inside == frozenset({"stay"})

    def test_commands_enabled_within(self):
        system = ExplicitSystem(
            commands=("stay", "leave"),
            initial=[0],
            transitions=[(0, "stay", 0), (0, "leave", 1)],
        )
        graph = explore(system)
        assert graph.commands_enabled_within({graph.index_of(0)}) == frozenset(
            {"stay", "leave"}
        )

    def test_describe_mentions_completeness(self):
        assert "complete" in explore(chain(2)).describe()
        assert "bounded" in explore(chain(10), max_depth=2).describe()


class TestCompactStorage:
    """The packed-column graph: the lazy transition view and bitmasks."""

    def test_view_is_a_sequence(self):
        graph = explore(chain(4))
        view = graph.transitions
        assert len(view) == 4
        assert view[0].source == 0 and view[0].target == 1
        assert view[-1].target == 4
        assert list(view[1:3]) == [view[1], view[2]]
        with pytest.raises(IndexError):
            view[99]

    def test_view_equals_materialized_tuple(self):
        graph = explore(chain(3))
        assert graph.transitions == tuple(graph.transitions)
        assert graph.transitions == list(graph.transitions)
        assert graph.transitions == explore(chain(3)).transitions

    def test_view_items_are_indexed_transitions(self):
        graph = explore(chain(2))
        t = graph.transitions[0]
        assert (t.source, t.command, t.target) == (0, "next", 1)
        assert graph.transitions[0] == t  # fresh view objects compare equal

    def test_columns_back_the_view(self):
        graph = explore(chain(3))
        src, cmd, dst = graph.transition_columns
        assert list(src) == [t.source for t in graph.transitions]
        assert list(dst) == [t.target for t in graph.transitions]

    def test_outgoing_incoming_from_csr(self):
        graph = explore(chain(3))
        assert [t.target for t in graph.outgoing(0)] == [1]
        assert [t.source for t in graph.incoming(2)] == [1]
        assert graph.incoming(0) == ()
        assert graph.outgoing(3) == ()

    def test_enabled_sets_are_shared(self):
        graph = explore(chain(5))
        # Same mask => same frozenset object (built once per mask).
        assert graph.enabled_at(0) is graph.enabled_at(1)

    def test_repeated_access_is_stable(self):
        graph = explore(chain(3))
        assert graph.outgoing(1) == graph.outgoing(1)
        assert graph.incoming(1) == graph.incoming(1)
