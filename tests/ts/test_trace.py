"""Tests for execution traces."""

from repro.ts import TraceRecorder


def make_trace(steps, final="end", terminated=True, final_enabled=frozenset()):
    recorder = TraceRecorder()
    for state, enabled, command in steps:
        recorder.record(state, frozenset(enabled), command)
    return recorder.finish(final, final_enabled, terminated)


class TestExecutionTrace:
    def test_counts(self):
        trace = make_trace(
            [
                (0, {"a", "b"}, "a"),
                (1, {"a", "b"}, "b"),
                (2, {"b"}, "b"),
            ]
        )
        assert trace.execution_counts() == {"a": 1, "b": 2}
        assert trace.enabled_counts() == {"a": 2, "b": 3}
        assert len(trace) == 3

    def test_states_and_commands(self):
        trace = make_trace([(0, {"a"}, "a"), (1, {"a"}, "a")], final=2)
        assert trace.states() == (0, 1, 2)
        assert trace.commands() == ("a", "a")

    def test_starvation_span(self):
        trace = make_trace(
            [
                (0, {"a", "b"}, "b"),
                (1, {"a", "b"}, "b"),
                (2, {"a", "b"}, "a"),
                (3, {"a", "b"}, "b"),
            ]
        )
        assert trace.starvation_span("a") == 2

    def test_starvation_resets_when_disabled(self):
        trace = make_trace(
            [
                (0, {"a", "b"}, "b"),
                (1, {"b"}, "b"),
                (2, {"a", "b"}, "b"),
            ]
        )
        assert trace.starvation_span("a") == 1

    def test_suffix_violations(self):
        trace = make_trace(
            [
                (0, {"a", "b"}, "b"),
                (1, {"a", "b"}, "b"),
                (2, {"a", "b"}, "b"),
            ],
            terminated=False,
        )
        assert trace.suffix_violations(2) == ["a"]

    def test_suffix_violations_window_capped(self):
        trace = make_trace([(0, {"a", "b"}, "b")], terminated=False)
        assert trace.suffix_violations(100) == ["a"]

    def test_no_violation_when_executed(self):
        trace = make_trace(
            [(0, {"a"}, "a"), (1, {"a"}, "a")], terminated=False
        )
        assert trace.suffix_violations(2) == []
