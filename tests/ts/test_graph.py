"""Tests for SCC decomposition over explored graphs."""

from hypothesis import given, strategies as st

from repro.ts import (
    ExplicitSystem,
    condensation_edges,
    decompose,
    explore,
    internal_transitions,
    is_nontrivial_scc,
    tarjan_scc,
)


def graph_of(transitions, commands=("a",), initial=(0,)):
    return explore(ExplicitSystem(commands, list(initial), transitions))


class TestTarjan:
    def test_single_cycle(self):
        components = tarjan_scc([0, 1, 2], {0: [1], 1: [2], 2: [0]})
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_dag_gives_singletons(self):
        components = tarjan_scc([0, 1, 2], {0: [1], 1: [2]})
        assert [sorted(c) for c in components] == [[2], [1], [0]]

    def test_reverse_topological_emission(self):
        # Two SCCs: {0,1} → {2,3}; sinks first.
        components = tarjan_scc(
            [0, 1, 2, 3], {0: [1], 1: [0, 2], 2: [3], 3: [2]}
        )
        assert sorted(components[0]) == [2, 3]
        assert sorted(components[1]) == [0, 1]


class TestDecompose:
    def test_rank_decreases_along_edges(self):
        graph = graph_of(
            [(0, "a", 1), (1, "a", 0), (1, "a", 2), (2, "a", 3), (3, "a", 2)]
        )
        decomposition = decompose(graph)
        for t in graph.transitions:
            a = decomposition.component_of[t.source]
            b = decomposition.component_of[t.target]
            assert a >= b  # reverse topological: edges never climb

    def test_restriction_ignores_external_edges(self):
        graph = graph_of([(0, "a", 1), (1, "a", 0), (1, "a", 2), (2, "a", 1)])
        # Restricted to {0, 1}: a two-state SCC.
        i0, i1 = graph.index_of(0), graph.index_of(1)
        decomposition = decompose(graph, restrict_to=[i0, i1])
        assert decomposition.component_of[i0] == decomposition.component_of[i1]

    def test_internal_transitions(self):
        graph = graph_of([(0, "a", 0), (0, "a", 1)])
        i0 = graph.index_of(0)
        inside = internal_transitions(graph, [i0])
        assert len(inside) == 1
        assert inside[0].command == "a"

    def test_nontrivial_detection(self):
        graph = graph_of([(0, "a", 0), (0, "a", 1)])
        assert is_nontrivial_scc(graph, [graph.index_of(0)])
        assert not is_nontrivial_scc(graph, [graph.index_of(1)])

    def test_condensation_edges(self):
        graph = graph_of([(0, "a", 1), (1, "a", 0), (1, "a", 2)])
        decomposition = decompose(graph)
        edges = condensation_edges(graph, decomposition)
        assert len(edges) == 1
        (edge,) = edges
        assert edge[0] > edge[1]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_components_partition_states(self, edges):
        transitions = [(a, "a", b) for a, b in edges] + [
            (0, "a", i) for i in range(8)
        ]
        graph = graph_of(transitions)
        decomposition = decompose(graph)
        seen = [i for component in decomposition.components for i in component]
        assert sorted(seen) == list(range(len(graph)))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=18,
        )
    )
    def test_mutual_reachability_within_components(self, edges):
        transitions = [(a, "a", b) for a, b in edges] + [
            (0, "a", i) for i in range(7)
        ]
        graph = graph_of(transitions)
        decomposition = decompose(graph)
        # Brute-force reachability.
        n = len(graph)
        reach = [[False] * n for _ in range(n)]
        for i in range(n):
            reach[i][i] = True
        for _ in range(n):
            for t in graph.transitions:
                for i in range(n):
                    if reach[i][t.source]:
                        reach[i][t.target] = True
        for component in decomposition.components:
            for a in component:
                for b in component:
                    assert reach[a][b] and reach[b][a]
