"""Tests for measure profiling."""

from repro.analysis import profile_measure
from repro.completeness import synthesize_measure
from repro.measures import annotate, check_measure
from repro.ts import explore
from repro.workloads import nested_rings, p2, p2_assertion


class TestProfileMeasure:
    def test_p2_annotation_profile(self):
        program = p2(4)
        graph = explore(program)
        assignment = p2_assertion().compile()
        check = check_measure(graph, assignment)
        profile = profile_measure(graph, assignment, check)
        assert profile.states == 5
        assert profile.height_histogram == {2: 5}
        assert profile.max_height == 2
        # The la-hypothesis is bare everywhere; T carries 0..4.
        assert profile.subjects["la"].bare == 5
        assert profile.subjects["T"].min_value == 0
        assert profile.subjects["T"].max_value == 4
        assert profile.active_by_command == {"la": {0: 4}, "lb": {1: 4}}

    def test_synthesised_rings_profile(self):
        graph = explore(nested_rings(2))
        synthesis = synthesize_measure(graph)
        profile = profile_measure(graph, synthesis.assignment())
        assert profile.max_height == 4
        assert "exit_2" in profile.subjects
        assert profile.active_by_command == {}  # no check supplied

    def test_describe_renders(self):
        program = p2(3)
        graph = explore(program)
        assignment = p2_assertion().compile()
        profile = profile_measure(graph, assignment)
        text = profile.describe()
        assert "stack heights" in text
        assert "la" in text

    def test_level_distribution_tracked(self):
        graph = explore(nested_rings(1))
        synthesis = synthesize_measure(graph)
        profile = profile_measure(graph, synthesis.assignment())
        t_profile = profile.subjects["T"]
        assert t_profile.levels == {0: t_profile.occurrences}
