"""Tests for report tables."""

import pytest

from repro.analysis import Table, format_ratio, histogram_line


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1]
        # Header separator present.
        assert set(lines[2]) == {"-"}
        assert len(lines) == 5

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_show_prints(self, capsys):
        table = Table("demo", ["a"])
        table.add(1)
        table.show()
        assert "demo" in capsys.readouterr().out


class TestHelpers:
    def test_format_ratio(self):
        assert format_ratio(10, 4) == "×2.5"
        assert format_ratio(1, 0) == "n/a"

    def test_histogram_line_sorted(self):
        assert histogram_line({2: 5, 0: 1}) == "0:1 2:5"

    def test_histogram_line_with_order(self):
        assert histogram_line({2: 5, 0: 1}, order=[2, 0, 9]) == "2:5 0:1"
