"""Tests for the stack-assertion language."""

import pytest

from repro.gcl import EvalError, parse_program
from repro.measures import (
    HypothesisSpec,
    StackAssertion,
    StackCase,
    annotate,
    parse_hypothesis_spec,
)
from repro.wf import NATURALS, BoundedNaturals


class TestSpecParsing:
    def test_with_measure(self):
        spec = parse_hypothesis_spec("la: z mod 117")
        assert spec.subject == "la"
        assert spec.measure == "z mod 117"

    def test_bare(self):
        spec = parse_hypothesis_spec("lb")
        assert spec.subject == "lb"
        assert spec.measure is None

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_hypothesis_spec("???")


class TestStackCaseValidation:
    def test_termination_must_be_last(self):
        with pytest.raises(ValueError):
            StackCase(hypotheses=(HypothesisSpec("la"),))

    def test_termination_needs_measure(self):
        with pytest.raises(ValueError):
            StackCase(hypotheses=(HypothesisSpec("T"),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StackCase(hypotheses=())


class TestCompilation:
    def program(self):
        return parse_program(
            """
            program Q
            var x := 0, y := 4
            do
                 la: x < y -> x := x + 1
              [] lb: x < y -> skip
            od
            """
        )

    def test_single_case_evaluates(self):
        assertion = StackAssertion.parse(["la", "T: max(y - x, 0)"])
        assignment = assertion.compile()
        program = self.program()
        stack = assignment(program.state(x=1, y=4))
        assert stack.termination_measure() == 3
        assert stack.level(1).subject == "la"
        assert stack.level(1).value is None

    def test_callable_measure(self):
        assertion = StackAssertion.parse(
            [("la", lambda s: 42), ("T", "y - x")]
        )
        stack = assertion.compile()(self.program().state(x=0, y=4))
        assert stack.measure("la") == 42

    def test_cases_select_by_condition(self):
        assertion = StackAssertion(
            [
                StackCase(
                    hypotheses=(
                        HypothesisSpec("la"),
                        HypothesisSpec("T", "y - x"),
                    ),
                    condition="x < 2",
                ),
                StackCase(hypotheses=(HypothesisSpec("T", "y - x"),)),
            ]
        )
        compiled = assertion.compile()
        program = self.program()
        assert compiled(program.state(x=0, y=4)).height == 2
        assert compiled(program.state(x=3, y=4)).height == 1

    def test_boolean_measure_rejected_at_evaluation(self):
        assertion = StackAssertion.parse(["T: x < y"])
        with pytest.raises(EvalError):
            assertion.compile()(self.program().state(x=0, y=4))

    def test_custom_order_carried(self):
        assertion = StackAssertion.parse(
            ["T: max(y - x, 0)"], order=BoundedNaturals(10)
        )
        assert assertion.compile().order == BoundedNaturals(10)

    def test_no_case_applies_raises(self):
        assertion = StackAssertion(
            [
                StackCase(
                    hypotheses=(HypothesisSpec("T", "0"),), condition="false"
                )
            ]
        )
        with pytest.raises(EvalError):
            assertion.compile()(self.program().state(x=0, y=4))

    def test_needs_at_least_one_case(self):
        with pytest.raises(ValueError):
            StackAssertion([])

    def test_render_shows_lines(self):
        assertion = StackAssertion.parse(["la: z", "T: y - x"])
        rendered = assertion.render()
        assert "la: z" in rendered
        assert "T: y - x" in rendered


class TestAnnotate:
    def test_unknown_label_rejected(self):
        program = parse_program(
            "program Q var x := 0 do a: x < 1 -> x := x + 1 od"
        )
        with pytest.raises(ValueError):
            annotate(program, StackAssertion.parse(["zz", "T: 1 - x"]))

    def test_check_runs_end_to_end(self):
        program = parse_program(
            """
            program Q
            var x := 0, y := 3
            do
                 la: x < y -> x := x + 1
              [] lb: x < y -> skip
            od
            """
        )
        proof = annotate(program, StackAssertion.parse(["la", "T: max(y - x, 0)"]))
        result = proof.check()
        assert result.is_fair_termination_measure

    def test_render_combines_assertion_and_program(self):
        program = parse_program(
            "program Q var x := 0 do a: x < 1 -> x := x + 1 od"
        )
        proof = annotate(program, StackAssertion.parse(["T: 1 - x"]))
        rendered = proof.render()
        assert "T: 1 - x" in rendered
        assert "program Q" in rendered
