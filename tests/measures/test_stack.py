"""Tests for hypotheses and stacks."""

import pytest

from repro.measures import TERMINATION, Hypothesis, Stack, stacks_equal_below


class TestHypothesis:
    def test_termination_needs_value(self):
        with pytest.raises(ValueError):
            Hypothesis(TERMINATION)

    def test_bare_unfairness_hypothesis(self):
        h = Hypothesis("la")
        assert not h.has_measure
        assert not h.is_termination

    def test_with_value(self):
        h = Hypothesis("la").with_value(3)
        assert h.value == 3
        assert h.subject == "la"

    def test_empty_subject_rejected(self):
        with pytest.raises(ValueError):
            Hypothesis("")

    def test_str(self):
        assert str(Hypothesis("la", 3)) == "la: 3"
        assert str(Hypothesis("la")) == "la"


def stack(*entries):
    return Stack(entries)


class TestStack:
    def test_termination_at_bottom_required(self):
        with pytest.raises(ValueError):
            stack(Hypothesis("la", 1))

    def test_nonempty_required(self):
        with pytest.raises(ValueError):
            Stack(())

    def test_termination_only_at_bottom(self):
        with pytest.raises(ValueError):
            stack(
                Hypothesis(TERMINATION, 0),
                Hypothesis(TERMINATION, 1),
            )

    def test_duplicate_subjects_rejected(self):
        with pytest.raises(ValueError):
            stack(
                Hypothesis(TERMINATION, 0),
                Hypothesis("la", 1),
                Hypothesis("la", 2),
            )

    def test_top_down_matches_paper_display(self):
        s = Stack.top_down(
            [Hypothesis("lb"), Hypothesis("la", 3), Hypothesis(TERMINATION, 7)]
        )
        assert s.level(0).subject == TERMINATION
        assert s.level(1).subject == "la"
        assert s.level(2).subject == "lb"

    def test_levels_and_measures(self):
        s = stack(
            Hypothesis(TERMINATION, 7),
            Hypothesis("la", 3),
            Hypothesis("lb"),
        )
        assert s.height == 3
        assert s.level_of("la") == 1
        assert s.level_of("zz") is None
        assert s.measure("la") == 3
        assert s.measure(TERMINATION) == 7
        assert s.measure("lb") is None
        assert s.termination_measure() == 7
        assert s.subjects() == (TERMINATION, "la", "lb")

    def test_below(self):
        s = stack(Hypothesis(TERMINATION, 7), Hypothesis("la", 3))
        assert s.below(1) == (Hypothesis(TERMINATION, 7),)
        assert s.below(0) == ()

    def test_equality_and_hash(self):
        a = stack(Hypothesis(TERMINATION, 1), Hypothesis("la", 2))
        b = stack(Hypothesis(TERMINATION, 1), Hypothesis("la", 2))
        assert a == b and hash(a) == hash(b)
        assert a != stack(Hypothesis(TERMINATION, 1))

    def test_replace(self):
        s = stack(Hypothesis(TERMINATION, 1), Hypothesis("la", 2))
        s2 = s.replace(1, Hypothesis("la", 9))
        assert s2.measure("la") == 9
        assert s.measure("la") == 2

    def test_render_is_top_down(self):
        s = stack(Hypothesis(TERMINATION, 7), Hypothesis("la", 3), Hypothesis("lb"))
        assert s.render() == "(lb / la: 3 / T: 7)"


class TestStacksEqualBelow:
    def test_prefix_comparison(self):
        a = stack(Hypothesis(TERMINATION, 1), Hypothesis("la", 2))
        b = stack(Hypothesis(TERMINATION, 1), Hypothesis("la", 9))
        assert stacks_equal_below(a, b, 1)
        assert not stacks_equal_below(a, b, 2)

    def test_level_zero_trivially_equal(self):
        a = stack(Hypothesis(TERMINATION, 1))
        b = stack(Hypothesis(TERMINATION, 5))
        assert stacks_equal_below(a, b, 0)
