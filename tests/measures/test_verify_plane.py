"""The columnar verification plane (DESIGN §6h).

Three layers of evidence that the packed-column engine is an *engine
swap*, never a semantics change:

* **codec round-trips** — ``encode_stacks``/``decode_stack`` lose nothing
  the level search observes, across empty (T-only), max-height, stray-
  subject and bare-value stacks;
* **kernel parity** — ``check_chunk_columns`` agrees with
  ``find_active_level_general`` edge by edge, witness levels, reasons and
  failure buckets included;
* **engine differentials** — ``check_measure`` under
  ``REPRO_VERIFY_PLANE=1`` (columnar; serial and pool-sharded via
  ``REPRO_FORCE_PARALLEL=1``) returns results identical to
  ``REPRO_VERIFY_PLANE=0`` (the tuple path) on the paper examples
  P1–P4 and on a violating family, witnesses and violation renderings
  compared string by string.
"""

import os
from array import array

import pytest

from repro.measures import StackAssertion, Stack, TERMINATION, Hypothesis
from repro.measures import check_measure
from repro.measures.columns import (
    BARE_VALUE,
    T_SUBJECT,
    check_chunk_columns,
    encode_stacks,
)
from repro.measures.verification import (
    PLANE_WORK_CUTOFF,
    VERIFY_PLANE_ENV,
    find_active_level_general,
)
from repro.ts import explore
from repro.wf import NATURALS, FiniteOrder
from repro.workloads import (
    grid_hypercube,
    p1,
    p1_assertion,
    p2,
    p2_assertion,
    p3_bounded,
    p3_assertion,
    p4_bounded,
    p4_assertion,
)


def _result_observables(result, with_witnesses=True):
    """Everything the tuple and columnar engines must agree on."""
    observed = {
        "ok": result.ok,
        "checked": result.transitions_checked,
        "complete": result.complete,
        "well_founded": result.order_well_founded,
        "summary": result.summary(),
        "violations": [str(v) for v in result.violations],
    }
    if with_witnesses:
        observed["witnesses"] = [
            (str(w.transition), w.level, w.subject, w.reason)
            for w in result.witnesses
        ]
    return observed


@pytest.fixture
def plane_env(monkeypatch):
    """Toggle the verify-plane engine per call: ``run(mode, jobs)``."""

    def run(graph, assignment, mode, n_jobs=None, force=False, **kw):
        monkeypatch.setenv(VERIFY_PLANE_ENV, mode)
        if force:
            monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        else:
            monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        return check_measure(graph, assignment, n_jobs=n_jobs, **kw)

    return run


# ---------------------------------------------------------------------------
# Codec round-trips
# ---------------------------------------------------------------------------


class TestCodecRoundTrip:
    def _table(self, program):
        return explore(program).analyses.commands

    def test_paper_assignments_round_trip(self):
        for program, assertion in (
            (p2(6), p2_assertion()),
            (p3_bounded(3, 120), p3_assertion()),
            (p4_bounded(2, 2, 40), p4_assertion()),
        ):
            graph = explore(program)
            assignment = assertion.compile()
            stacks = [assignment(s) for s in graph.states]
            commands = graph.analyses.commands
            columns, reason = encode_stacks(
                stacks, commands, assignment.order
            )
            assert reason is None
            assert columns.n_states == len(stacks)
            for index, stack in enumerate(stacks):
                assert columns.decode_stack(index, commands) == stack

    def test_empty_stack_is_t_only(self):
        # The paper's minimal annotation: height 1, nothing above T.  A
        # bare (value-less) hypothesis can only live above level 0 — the
        # T-hypothesis always carries a measure value.
        graph = explore(p1(5))
        commands = graph.analyses.commands
        stacks = [
            Stack([Hypothesis(TERMINATION, i)]) for i in range(len(graph))
        ]
        columns, reason = encode_stacks(stacks, commands, NATURALS)
        assert reason is None
        assert columns.subject[columns.offsets[0]] == T_SUBJECT
        bare = Stack(
            [Hypothesis(TERMINATION, 1), Hypothesis("inc", None)]
        )
        bare_cols, bare_reason = encode_stacks(
            [bare], commands, NATURALS
        )
        assert bare_reason is None
        assert bare_cols.value_id[bare_cols.offsets[0] + 1] == BARE_VALUE
        assert bare_cols.decode_stack(0, commands) == bare
        for index in range(len(graph)):
            assert columns.decode_stack(index, commands) == stacks[index]

    def test_max_height_stack_with_strays(self):
        # One hypothesis per command plus subjects the table has never
        # seen: the full height the duplicate-subject invariant admits.
        graph = explore(p2(4))
        commands = graph.analyses.commands
        entries = [Hypothesis(TERMINATION, 3)]
        entries += [
            Hypothesis(label, k) for k, label in enumerate(commands.labels)
        ]
        entries += [Hypothesis(f"ghost{j}", None) for j in range(3)]
        stack = Stack(entries)
        columns, reason = encode_stacks(
            [stack] * len(graph), commands, NATURALS
        )
        assert reason is None
        decoded = columns.decode_stack(0, commands)
        assert decoded == stack
        # Stray subjects encode above the command-id range, so they can
        # never collide with an enabled bit or the executed command.
        lo, hi = columns.offsets[0], columns.offsets[1]
        stray_ids = [
            columns.subject[r]
            for r in range(lo, hi)
            if columns.subject[r] >= len(commands.labels)
        ]
        assert len(stray_ids) == 3

    def test_rank_is_order_isomorphic_on_naturals(self):
        graph = explore(p2(4))
        commands = graph.analyses.commands
        stacks = [
            Stack([Hypothesis(TERMINATION, v)]) for v in (0, 7, 3, 7, 10)
        ]
        columns, reason = encode_stacks(stacks, commands, NATURALS)
        assert reason is None
        rank_of = {
            v: columns.rank[columns.offsets[i]]
            for i, v in enumerate((0, 7, 3, 7, 10))
        }
        for a in rank_of:
            for b in rank_of:
                assert (rank_of[a] > rank_of[b]) == NATURALS.gt(a, b)

    def test_non_integer_total_order_uses_dominance_ranks(self):
        graph = explore(p2(4))
        commands = graph.analyses.commands
        order = FiniteOrder(
            ["low", "mid", "high"],
            [("high", "mid"), ("mid", "low")],
        )
        stacks = [
            Stack([Hypothesis(TERMINATION, v)])
            for v in ("high", "low", "mid")
        ]
        columns, reason = encode_stacks(stacks, commands, order)
        assert reason is None
        ranks = [columns.rank[columns.offsets[i]] for i in range(3)]
        for i, a in enumerate(("high", "low", "mid")):
            for j, b in enumerate(("high", "low", "mid")):
                assert (ranks[i] > ranks[j]) == order.gt(a, b)

    def test_partial_order_falls_back(self):
        # x ≻ z with y incomparable to both: any integer ranking gives x
        # and y different ranks, faking an x ≻ y the order does not have.
        # (A pure antichain *is* representable — all ranks equal — so the
        # refusal must come from the exactness audit, not mere partiality.)
        order = FiniteOrder(["x", "y", "z"], [("x", "z")])
        graph = explore(p2(4))
        commands = graph.analyses.commands
        stacks = [
            Stack([Hypothesis(TERMINATION, v)]) for v in ("x", "y", "z")
        ]
        columns, reason = encode_stacks(stacks, commands, order)
        assert columns is None
        assert reason == "rank"

    def test_t_command_label_falls_back(self):
        # A command literally named "T" would collide with the level-0
        # T-subject sentinel in the V_NonI comparison: refuse to encode.
        from repro.ts import ExplicitSystem

        system = ExplicitSystem(
            commands=["T", "a"],
            initial=["s"],
            transitions=[("s", "T", "s2"), ("s", "a", "s2")],
        )
        graph = explore(system)
        commands = graph.analyses.commands
        stacks = [Stack([Hypothesis(TERMINATION, 1)])] * len(graph)
        columns, reason = encode_stacks(stacks, commands, NATURALS)
        assert columns is None
        assert reason == "t_label"


# ---------------------------------------------------------------------------
# Kernel vs the object-level level search
# ---------------------------------------------------------------------------


class TestKernelParity:
    def _check_both(self, program, assertion):
        graph = explore(program)
        assignment = assertion.compile()
        stacks = [assignment(s) for s in graph.states]
        analyses = graph.analyses
        commands = analyses.commands
        columns, reason = encode_stacks(stacks, commands, assignment.order)
        assert reason is None
        src, cmd, dst = graph.transition_columns
        masks = analyses.enabled_masks
        m = len(src)
        words, violating, _counts = check_chunk_columns(
            columns.offsets, columns.subject, columns.value_id,
            columns.rank, src, cmd, dst, masks, 0, m,
            columns.n_commands, True,
        )
        violating = set(violating)
        for eid in range(m):
            s, t = src[eid], dst[eid]
            data, failures = find_active_level_general(
                stacks[s],
                stacks[t],
                commands.singleton(cmd[eid]),
                commands.labels_of_mask(masks[s] | masks[t]),
                assignment.order,
            )
            if data is None:
                assert eid in violating, (eid, failures)
                assert words[eid] == -1
            else:
                assert eid not in violating
                word = words[eid]
                assert word >> 1 == data.level
                assert ("decrease" if word & 1 else "enabled") == data.reason

    def test_passing_and_failing_families(self):
        self._check_both(p2(5), p2_assertion())
        self._check_both(p4_bounded(2, 2, 30), p4_assertion())
        # A failing annotation: x0 alone cannot witness the other axes.
        self._check_both(
            grid_hypercube(3, 3), StackAssertion.parse(["T: x0"])
        )


# ---------------------------------------------------------------------------
# Whole-engine differentials
# ---------------------------------------------------------------------------


class TestEngineDifferential:
    FAMILIES = ()

    @staticmethod
    def _families():
        dims = 3
        total = " + ".join(f"x{i}" for i in range(dims))
        return [
            (p1(8), p1_assertion()),
            (p2(6), p2_assertion()),
            (p3_bounded(3, 120), p3_assertion()),
            (p4_bounded(2, 2, 40), p4_assertion()),
            # Violating: x1/x2 decrements never decrease x0.
            (grid_hypercube(dims, 3), StackAssertion.parse(["T: x0"])),
            (grid_hypercube(dims, 3), StackAssertion.parse([f"T: {total}"])),
        ]

    def test_columnar_matches_tuple_engine(self, plane_env):
        for program, assertion in self._families():
            graph = explore(program)
            assignment = assertion.compile()
            baseline = _result_observables(
                plane_env(graph, assignment, "0")
            )
            serial = _result_observables(
                plane_env(graph, assignment, "1")
            )
            assert serial == baseline

    def test_columnar_sharded_matches_tuple_engine(self, plane_env):
        for program, assertion in self._families():
            graph = explore(program)
            assignment = assertion.compile()
            baseline = _result_observables(
                plane_env(graph, assignment, "0")
            )
            sharded = _result_observables(
                plane_env(graph, assignment, "1", n_jobs=2, force=True)
            )
            assert sharded == baseline

    def test_no_witness_mode_matches_too(self, plane_env):
        program = grid_hypercube(3, 3)
        assignment = StackAssertion.parse(["T: x0"]).compile()
        graph = explore(program)
        baseline = _result_observables(
            plane_env(graph, assignment, "0", keep_witnesses=False)
        )
        for n_jobs, force in ((None, False), (2, True)):
            columnar = _result_observables(
                plane_env(
                    graph, assignment, "1",
                    n_jobs=n_jobs, force=force, keep_witnesses=False,
                )
            )
            assert columnar == baseline
        assert baseline["witnesses"] == []

    def test_plane_disabled_by_env(self, plane_env, monkeypatch):
        from repro.telemetry import core as telemetry

        graph = explore(p2(6))
        assignment = p2_assertion().compile()
        telemetry.reset()
        telemetry.enable()
        try:
            plane_env(graph, assignment, "0", n_jobs=2, force=True)
            counters = telemetry.registry().snapshot()["counters"]
        finally:
            telemetry.reset()
            telemetry.disable()
        assert "verify.plane.engaged" not in counters

    def test_auto_mode_engages_above_cutoff(self, plane_env):
        from repro.telemetry import core as telemetry

        graph = explore(p2(6))
        assignment = p2_assertion().compile()
        assert len(graph.transitions) < PLANE_WORK_CUTOFF
        telemetry.reset()
        telemetry.enable()
        try:
            # Below the cutoff, serial auto mode stays on the tuple path.
            plane_env(graph, assignment, "")
            counters = telemetry.registry().snapshot()["counters"]
            assert "verify.plane.engaged" not in counters
            # Forcing engages regardless of size.
            plane_env(graph, assignment, "1")
            counters = telemetry.registry().snapshot()["counters"]
            assert counters.get("verify.plane.engaged") == 1
        finally:
            telemetry.reset()
            telemetry.disable()

    def test_generalized_requirements_fall_back(self, plane_env):
        from repro.fairness.generalized import command_requirements

        graph = explore(p2(6))
        assignment = p2_assertion().compile()
        requirements = command_requirements(graph.system)
        baseline = _result_observables(
            plane_env(graph, assignment, "0", requirements=requirements)
        )
        forced = _result_observables(
            plane_env(graph, assignment, "1", requirements=requirements)
        )
        assert forced == baseline


# ---------------------------------------------------------------------------
# Streaming mask priming
# ---------------------------------------------------------------------------


class TestStreamingMaskPrimes:
    def test_streaming_verdict_unchanged_and_primed(self, monkeypatch):
        from repro.measures import check_measure_streaming
        from repro.telemetry import core as telemetry

        program = grid_hypercube(3, 3)
        assignment = StackAssertion.parse(["T: x0"]).compile()
        graph = explore(program)
        baseline = _result_observables(check_measure(graph, assignment))

        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        telemetry.reset()
        telemetry.enable()
        try:
            streamed = check_measure_streaming(
                program, assignment, n_jobs=2
            )
            counters = telemetry.registry().snapshot()["counters"]
        finally:
            telemetry.reset()
            telemetry.disable()
        assert _result_observables(streamed) == baseline
        # The value-plane rounds primed the verifier's enabled sets; the
        # serial re-derivation stayed on the bench.
        assert counters.get("stream.mask_primes", 0) > 0
        assert counters.get("stream.mask_derived_serially", 0) == 0
