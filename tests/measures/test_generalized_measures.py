"""Tests for stack measures over generalized fairness requirements.

The paper (§4.1) notes its definitions "depend only on the notions of
commands or actions being 'enabled' and 'executed'" — these tests exercise
exactly that generality: hypotheses naming requirements rather than
commands, checked and synthesised end to end.
"""

import pytest

from repro.completeness import NotFairlyTerminatingError, synthesize_measure
from repro.fairness import (
    check_general_fair_termination,
    command_requirements,
    group_requirement,
    predicate_requirement,
)
from repro.measures import (
    TERMINATION,
    Hypothesis,
    Stack,
    StackAssignment,
    check_measure,
)
from repro.ts import ExplicitSystem, explore
from repro.wf import NATURALS
from repro.workloads import random_system


def escape_ring():
    """0 -g1-> 1 -g2-> 0 with stop at 0 (terminal 2)."""
    return ExplicitSystem(
        commands=("g1", "g2", "stop"),
        initial=[0],
        transitions=[(0, "g1", 1), (1, "g2", 0), (0, "stop", 2)],
    )


class TestGeneralizedChecking:
    def test_group_measure_verifies(self):
        system = escape_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        stop = command_requirements(system)[2]
        # Stack: T = SCC rank (1 inside the ring, 0 at the terminal);
        # the 'stop' requirement hypothesis explains the ring steps.
        table = {
            0: Stack([Hypothesis(TERMINATION, 1), Hypothesis("stop")]),
            1: Stack([Hypothesis(TERMINATION, 1), Hypothesis("stop")]),
            2: Stack([Hypothesis(TERMINATION, 0)]),
        }
        assignment = StackAssignment.from_dict(table, NATURALS)
        result = check_measure(graph, assignment, requirements=(move, stop))
        assert result.is_fair_termination_measure

    def test_requirement_invalidation_enforced(self):
        system = escape_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        # A stack blaming 'move' is wrong: every ring step *fulfils* move,
        # invalidating the hypothesis (V_NonI in requirement form).
        table = {
            0: Stack([Hypothesis(TERMINATION, 1), Hypothesis("move")]),
            1: Stack([Hypothesis(TERMINATION, 1), Hypothesis("move")]),
            2: Stack([Hypothesis(TERMINATION, 0)]),
        }
        assignment = StackAssignment.from_dict(table, NATURALS)
        result = check_measure(graph, assignment, requirements=(move,))
        assert not result.ok
        assert any("V_NonI" in str(v) for v in result.violations)

    def test_predicate_requirement_measures(self):
        # Demand at even states, serviced by transitions leaving them.
        system = ExplicitSystem(
            commands=("step", "idle"),
            initial=[0],
            transitions=[(0, "idle", 0), (0, "step", 1), (1, "step", 2)],
        )
        graph = explore(system)
        leave_even = predicate_requirement(
            "serve-even",
            demands=lambda s: s % 2 == 0 and s < 2,
            serves=lambda s, c, t: s % 2 == 0 and t != s,
        )
        table = {
            0: Stack([Hypothesis(TERMINATION, 2), Hypothesis("serve-even")]),
            1: Stack([Hypothesis(TERMINATION, 1)]),
            2: Stack([Hypothesis(TERMINATION, 0)]),
        }
        assignment = StackAssignment.from_dict(table, NATURALS)
        result = check_measure(graph, assignment, requirements=(leave_even,))
        assert result.ok


class TestGeneralizedSynthesis:
    def test_synthesis_with_group_and_stop(self):
        system = escape_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        stop = command_requirements(system)[2]
        synthesis = synthesize_measure(graph, requirements=(move, stop))
        result = check_measure(
            graph, synthesis.assignment(), requirements=(move, stop)
        )
        assert result.is_fair_termination_measure
        assert synthesis.regions[0].helpful == "stop"

    def test_synthesis_fails_without_stop_requirement(self):
        system = escape_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        with pytest.raises(NotFairlyTerminatingError) as info:
            synthesize_measure(graph, requirements=(move,))
        assert info.value.witness is not None

    def test_command_requirements_reduce_to_default(self):
        """Synthesis with explicit command requirements produces the same
        stacks as the default path."""
        for seed in (1, 3, 11):
            graph = explore(random_system(seed, states=8, commands=3))
            requirements = command_requirements(graph.system)
            try:
                default = synthesize_measure(graph)
            except NotFairlyTerminatingError:
                with pytest.raises(NotFairlyTerminatingError):
                    synthesize_measure(graph, requirements=requirements)
                continue
            explicit = synthesize_measure(graph, requirements=requirements)
            assert default.stacks == explicit.stacks

    def test_generalized_verdict_matches_decision(self):
        """Synthesis succeeds exactly when the generalized decision says
        the program fairly terminates under those requirements."""
        system = escape_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        stop = command_requirements(system)[2]
        for requirements in ((move,), (move, stop), (stop,)):
            terminates, _ = check_general_fair_termination(graph, requirements)
            if terminates:
                synthesis = synthesize_measure(graph, requirements=requirements)
                assert check_measure(
                    graph, synthesis.assignment(), requirements=requirements
                ).ok
            else:
                with pytest.raises(NotFairlyTerminatingError):
                    synthesize_measure(graph, requirements=requirements)
