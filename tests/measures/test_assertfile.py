"""Tests for the assertion-file format."""

import pytest

from repro.measures import annotate
from repro.measures.assertfile import (
    AssertionFileError,
    load_assertion_file,
    parse_assertion_file,
)
from repro.wf import BoundedNaturals, NATURALS
from repro.workloads import p2, p4_bounded


class TestParsing:
    def test_single_default_case(self):
        assertion = parse_assertion_file(
            """
            la
            T: max(y - x, 0)
            """
        )
        assert len(assertion.cases) == 1
        assert assertion.cases[0].condition is None
        assert assertion.order is NATURALS

    def test_comments_and_blank_lines(self):
        assertion = parse_assertion_file(
            """
            # the paper's P2' annotation
            la          # the starved command

            T: max(y - x, 0)
            """
        )
        assert [s.subject for s in assertion.cases[0].hypotheses] == ["la", "T"]

    def test_order_declaration(self):
        assertion = parse_assertion_file(
            """
            order naturals(117)
            T: z mod 117
            """
        )
        assert assertion.order == BoundedNaturals(117)

    def test_guarded_cases(self):
        assertion = parse_assertion_file(
            """
            case x < 2:
                la
                T: y - x
            case:
                T: y - x
            """
        )
        assert len(assertion.cases) == 2
        assert assertion.cases[0].condition == "x < 2"
        assert assertion.cases[1].condition is None

    def test_unknown_order_rejected(self):
        with pytest.raises(AssertionFileError) as info:
            parse_assertion_file("order ordinals\nT: 0")
        assert "line 1" in str(info.value)

    def test_order_must_come_first(self):
        with pytest.raises(AssertionFileError):
            parse_assertion_file("T: 0\norder naturals")

    def test_duplicate_order_rejected(self):
        with pytest.raises(AssertionFileError):
            parse_assertion_file("order naturals\norder naturals\nT: 0")

    def test_empty_case_rejected(self):
        with pytest.raises(AssertionFileError):
            parse_assertion_file("case x < 1:\ncase:\nT: 0")

    def test_termination_must_be_last(self):
        with pytest.raises(AssertionFileError) as info:
            parse_assertion_file("T: 0\nla")
        assert "T-hypothesis" in str(info.value)

    def test_empty_file_rejected(self):
        with pytest.raises(AssertionFileError):
            parse_assertion_file("# just a comment\n")

    def test_garbage_line_reported_with_number(self):
        with pytest.raises(AssertionFileError) as info:
            parse_assertion_file("la\n???\nT: 0")
        assert "line 2" in str(info.value)


class TestEndToEnd:
    def test_p2_prime_from_file(self, tmp_path):
        path = tmp_path / "p2.assert"
        path.write_text("la\nT: max(y - x, 0)\n")
        assertion = load_assertion_file(str(path))
        result = annotate(p2(5), assertion).check()
        assert result.is_fair_termination_measure
        assert assertion.description == str(path)

    def test_p4_prime_from_file(self, tmp_path):
        path = tmp_path / "p4.assert"
        path.write_text(
            "# P4' (paper §3.4)\nlb\nla: z mod 117\nT: max(y - x, 0)\n"
        )
        assertion = load_assertion_file(str(path))
        result = annotate(p4_bounded(3, 240), assertion).check()
        assert result.is_fair_termination_measure


class TestCli:
    def test_check_subcommand_pass(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p2.gcl"
        program.write_text(
            "program P2 var x := 0, y := 5 do "
            "la: x < y -> x := x + 1 [] lb: x < y -> skip od"
        )
        assertion = tmp_path / "p2.assert"
        assertion.write_text("la\nT: max(y - x, 0)\n")
        code = main(["check", str(program), "--assertion", str(assertion)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_subcommand_fail_shows_violations(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p2.gcl"
        program.write_text(
            "program P2 var x := 0, y := 5 do "
            "la: x < y -> x := x + 1 [] lb: x < y -> skip od"
        )
        assertion = tmp_path / "bad.assert"
        assertion.write_text("lb\nT: max(y - x, 0)\n")  # wrong hypothesis
        code = main(["check", str(program), "--assertion", str(assertion)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "verification conditions fail" in out

    def test_check_subcommand_unknown_label(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p.gcl"
        program.write_text("program P var x := 0 do a: x < 1 -> x := x + 1 od")
        assertion = tmp_path / "p.assert"
        assertion.write_text("zz\nT: 1 - x\n")
        code = main(["check", str(program), "--assertion", str(assertion)])
        assert code == 2
