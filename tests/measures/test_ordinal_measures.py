"""Tests for ordinal-valued measures (the [AP86] connection, §2)."""

import pytest

from repro import StackAssertion, annotate, explore, parse_program
from repro.baselines import TerminationMeasure, check_termination_measure
from repro.measures import HypothesisSpec, StackCase
from repro.wf import OMEGA, ORDINALS, omega_power, ordinal

NESTED = """
program Nested
var u := 3, v := 0, cap := 4
do
     refill: u > 0 and v == 0 -> u := u - 1; choose v in 0 .. cap
  [] dec:    v > 0 -> v := v - 1
od
"""

PENDING = """
program Pending
var phase := 1, n := 0, cap := 6
do
     start: phase == 1 -> phase := 0; choose n in 0 .. cap
  [] dec:   phase == 0 and n > 0 -> n := n - 1
  [] idle:  phase == 1 -> skip
od
"""


class TestOrdinalFloyd:
    def test_omega_u_plus_v_decreases_everywhere(self):
        graph = explore(parse_program(NESTED))
        measure = TerminationMeasure(
            lambda s: OMEGA * s["u"] + ordinal(s["v"]), order=ORDINALS
        )
        result = check_termination_measure(graph, measure)
        assert result.ok and result.complete

    def test_swapped_measure_fails(self):
        # v·ω + u does not decrease on refills (wrong nesting order).
        graph = explore(parse_program(NESTED))
        measure = TerminationMeasure(
            lambda s: OMEGA * s["v"] + ordinal(s["u"]), order=ORDINALS
        )
        result = check_termination_measure(graph, measure)
        assert not result.ok

    def test_natural_attempt_fails_uniformly(self):
        # Any measure ignoring cap, e.g. u + v, fails on refills that pick
        # a large v.
        from repro.wf import NATURALS

        graph = explore(parse_program(NESTED))
        measure = TerminationMeasure(lambda s: s["u"] + s["v"], order=NATURALS)
        result = check_termination_measure(graph, measure)
        assert not result.ok


class TestOrdinalStackAssertions:
    def assertion(self):
        return StackAssertion(
            cases=[
                StackCase(
                    hypotheses=(
                        HypothesisSpec("start"),
                        HypothesisSpec("T", lambda s: OMEGA),
                    ),
                    condition="phase == 1",
                ),
                StackCase(
                    hypotheses=(HypothesisSpec("T", lambda s: ordinal(s["n"])),),
                ),
            ],
            order=ORDINALS,
        )

    def test_pending_choice_verifies(self):
        proof = annotate(parse_program(PENDING), self.assertion())
        result = proof.check()
        assert result.is_fair_termination_measure

    def test_start_step_realises_omega_descent(self):
        program = parse_program(PENDING)
        graph = explore(program)
        result = annotate(program, self.assertion()).check(graph=graph)
        start_levels = {
            w.level for w in result.witnesses if w.transition.command == "start"
        }
        assert start_levels == {0}  # ω ≻ n: the T-hypothesis is active
        idle_levels = {
            w.level for w in result.witnesses if w.transition.command == "idle"
        }
        assert idle_levels == {1}  # the starved start explains idling

    def test_omega_tower_values_accepted(self):
        # Sanity: the checker handles deeper CNF values too.
        program = parse_program(
            "program Two var x := 2 do a: x > 0 -> x := x - 1 od"
        )
        values = {2: omega_power(2), 1: OMEGA + 3, 0: ordinal(0)}
        assertion = StackAssertion(
            cases=[
                StackCase(
                    hypotheses=(
                        HypothesisSpec("T", lambda s: values[s["x"]]),
                    ),
                )
            ],
            order=ORDINALS,
        )
        result = annotate(program, assertion).check()
        assert result.is_fair_termination_measure
