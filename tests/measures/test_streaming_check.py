"""Differential tests: streaming verification vs the materialized checker.

``check_measure_streaming`` verifies each transition as exploration reaches
it; run to completion its result must be *bit-identical* to
``check_measure`` on the materialized graph — same witnesses (state
objects, stacks, levels, reasons), same violations, same counts — for every
workload family, bounded or not, at every job count.  With
``max_violations`` it must stop early and report a prefix of the
materialized violation list.
"""

import pytest

from repro.measures import (
    StackAssertion,
    check_measure,
    check_measure_streaming,
)
from repro.measures.annotate import annotate
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    distractor_loop,
    modulus_chain,
    p2,
    p2_assertion,
    p3_bounded,
    p3_assertion,
    p4_bounded,
    p4_bounded_assertion,
)

JOB_COUNTS = (None, 2, 4)

ANNOTATED = [
    ("p2", p2, p2_assertion),
    ("p3_bounded", p3_bounded, p3_assertion),
    ("p4_bounded", p4_bounded, p4_bounded_assertion),
]


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


def _assert_identical(streaming, materialized):
    assert streaming.witnesses == materialized.witnesses
    assert streaming.violations == materialized.violations
    assert streaming.transitions_checked == materialized.transitions_checked
    assert streaming.complete == materialized.complete
    assert streaming.order_well_founded == materialized.order_well_founded
    assert streaming.ok == materialized.ok


class TestDifferential:
    @pytest.mark.parametrize("name,make,make_assertion", ANNOTATED)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_paper_annotations(
        self, force_parallel, name, make, make_assertion, jobs
    ):
        program, assignment = make(), make_assertion().compile()
        materialized = check_measure(explore(program), assignment)
        streaming = check_measure_streaming(program, assignment, n_jobs=jobs)
        _assert_identical(streaming, materialized)
        assert not streaming.stopped_early
        assert streaming.states_explored == len(explore(program))

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_synthesized_measure(self, force_parallel, jobs):
        from repro.completeness.synthesis import synthesize_measure

        program = counter_grid(5, 5)
        graph = explore(program)
        assignment = synthesize_measure(graph).assignment()
        materialized = check_measure(graph, assignment)
        streaming = check_measure_streaming(program, assignment, n_jobs=jobs)
        _assert_identical(streaming, materialized)
        assert materialized.ok

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_bounded_exploration(self, force_parallel, jobs):
        program, assignment = p2(), p2_assertion().compile()
        graph = explore(program, max_states=5)
        materialized = check_measure(graph, assignment)
        streaming = check_measure_streaming(
            program, assignment, max_states=5, n_jobs=jobs
        )
        _assert_identical(streaming, materialized)
        assert not streaming.complete

    def test_keep_witnesses_false(self):
        program, assignment = p2(), p2_assertion().compile()
        materialized = check_measure(
            explore(program), assignment, keep_witnesses=False
        )
        streaming = check_measure_streaming(
            program, assignment, keep_witnesses=False
        )
        _assert_identical(streaming, materialized)
        assert not streaming.witnesses


class TestFailFast:
    def _violating(self):
        # The P2 program with a deliberately weakened assertion: dropping
        # the la hypothesis leaves lb-steps with no active level.
        program = p2(distance=6)
        assertion = StackAssertion.parse(["T: max(y - x, 0)"])
        return program, assertion.compile()

    def test_violations_are_a_prefix(self):
        program, assignment = self._violating()
        materialized = check_measure(explore(program), assignment)
        assert not materialized.ok
        streaming = check_measure_streaming(
            program, assignment, max_violations=1
        )
        assert streaming.stopped_early
        assert streaming.violations == materialized.violations[:1]
        assert streaming.states_explored < len(explore(program))

    def test_collects_up_to_max_violations(self):
        program, assignment = self._violating()
        materialized = check_measure(explore(program), assignment)
        limit = min(2, len(materialized.violations))
        streaming = check_measure_streaming(
            program, assignment, max_violations=limit
        )
        assert streaming.violations == materialized.violations[:limit]

    def test_unlimited_matches_materialized(self):
        program, assignment = self._violating()
        materialized = check_measure(explore(program), assignment)
        streaming = check_measure_streaming(program, assignment)
        _assert_identical(streaming, materialized)
        assert not streaming.stopped_early


class TestAnnotatedProgram:
    def test_check_streaming_matches_check(self):
        proof = annotate(p2(), p2_assertion())
        materialized = proof.check()
        streaming = proof.check_streaming()
        _assert_identical(streaming, materialized)

    def test_distractors_family(self):
        from repro.completeness.synthesis import synthesize_measure

        program = distractor_loop(3, 3)
        graph = explore(program)
        assignment = synthesize_measure(graph).assignment()
        _assert_identical(
            check_measure_streaming(program, assignment),
            check_measure(graph, assignment),
        )

    def test_modulus_chain_family(self):
        from repro.completeness.synthesis import synthesize_measure

        program = modulus_chain(2, fuel=3)
        graph = explore(program)
        assignment = synthesize_measure(graph).assignment()
        _assert_identical(
            check_measure_streaming(program, assignment),
            check_measure(graph, assignment),
        )
