"""The paper's worked examples, verified mechanically.

These tests are the executable form of Sections 3.1–3.4 and the §4.2 case
analysis: the exact annotations ``P1'``–``P4'`` pass the verification
conditions, perturbed annotations fail, and the active-hypothesis levels
match the paper's per-command argument.
"""

import pytest

from repro.baselines import check_termination_measure, TerminationMeasure
from repro.measures import StackAssertion, annotate, check_measure
from repro.ts import explore
from repro.workloads import (
    p1,
    p1_assertion,
    p2,
    p2_assertion,
    p3,
    p3_assertion,
    p3_bounded,
    p4,
    p4_assertion,
    p4_bounded,
)


class TestP1:
    def test_floyd_measure_passes(self):
        program = p1(10)
        graph = explore(program)
        measure = TerminationMeasure(
            lambda s: max(s["y"] - s["x"], 0), description="max{y-x, 0}"
        )
        assert check_termination_measure(graph, measure).ok

    def test_stack_form_passes_too(self):
        # P1' as a stack assertion of height 1.
        result = annotate(p1(10), p1_assertion()).check()
        assert result.is_fair_termination_measure
        assert result.active_levels() == {0: 10}


class TestP2:
    def test_paper_annotation_verifies(self):
        result = annotate(p2(8), p2_assertion()).check()
        assert result.is_fair_termination_measure

    def test_active_levels_match_va_vt(self):
        # (V_a): lb-steps keep μ^T constant with la enabled → level 1;
        # (V_T): la-steps decrease μ^T → level 0.  Exactly y each.
        result = annotate(p2(8), p2_assertion()).check()
        assert result.active_levels() == {0: 8, 1: 8}

    def test_floyd_alone_fails_on_p2(self):
        graph = explore(p2(8))
        measure = TerminationMeasure(lambda s: max(s["y"] - s["x"], 0))
        result = check_termination_measure(graph, measure)
        assert not result.ok  # skip transitions do not decrease it

    def test_wrong_hypothesis_fails(self):
        bad = StackAssertion.parse(["lb", "T: max(y - x, 0)"])
        result = annotate(p2(8), bad).check()
        assert not result.ok  # lb is the executed command on skip steps


class TestP3:
    def test_paper_annotation_verifies_on_bounded_region(self):
        result = annotate(p3(3, 240), p3_assertion()).check(max_states=2000)
        assert result.ok
        assert not result.complete  # unbounded z: explored region only

    def test_paper_annotation_exact_on_bounded_variant(self):
        result = annotate(p3_bounded(3, 240), p3_assertion()).check()
        assert result.is_fair_termination_measure

    def test_modulus_117_in_range(self):
        # μ^{ℓa} = z mod 117 stays within {0..116} — checkable by declaring
        # the bounded order... the T-measure shares the order, so use plain
        # naturals and assert the evaluated values directly.
        program = p3_bounded(2, 240)
        assignment = p3_assertion().compile()
        graph = explore(program)
        for i in range(len(graph)):
            value = assignment(graph.state_of(i)).measure("la")
            assert 0 <= value < 117

    def test_missing_la_measure_fails(self):
        # Without the ℓa progress measure, lb-steps at z ≢ 0 have no active
        # hypothesis: μ^T is constant and la is not enabled.
        bad = StackAssertion.parse(["la", "T: max(y - x, 0)"])
        result = annotate(p3_bounded(3, 240), bad).check()
        assert not result.ok


class TestP4:
    def test_paper_annotation_verifies_on_bounded_region(self):
        result = annotate(p4(3, 240), p4_assertion()).check(max_states=2000)
        assert result.ok

    def test_paper_annotation_exact_on_bounded_variant(self):
        result = annotate(p4_bounded(3, 240), p4_assertion()).check()
        assert result.is_fair_termination_measure

    def test_section_4_2_case_analysis(self):
        """§4.2: ℓa ⇒ T active (level 0); ℓb ⇒ ℓa-hypothesis active
        (level 1); ℓc ⇒ ℓb-hypothesis active (level 2)."""
        graph = explore(p4_bounded(3, 240))
        result = annotate(p4_bounded(3, 240), p4_assertion()).check(graph=graph)
        assert result.ok
        by_command = {}
        for witness in result.witnesses:
            by_command.setdefault(witness.transition.command, set()).add(
                witness.level
            )
        assert by_command["la"] == {0}
        assert by_command["lb"] == {1}
        # ℓc steps use level 2 except where ℓa is enabled (z ≡ 0), where
        # the checker's lowest-level preference picks level 1 — the §5
        # freedom in choosing the active hypothesis.
        assert by_command["lc"] <= {1, 2}
        assert 2 in by_command["lc"]

    def test_dropping_lb_level_fails(self):
        # P3's annotation is not enough once ℓc exists (§3.4).
        result = annotate(p4_bounded(3, 240), p3_assertion()).check()
        assert not result.ok

    def test_earlier_methods_would_need_three_programs(self):
        from repro.baselines import helpful_directions_proof

        graph = explore(p4_bounded(2, 10, 5))
        proof = helpful_directions_proof(graph)
        # "it would have been necessary to reason about three different
        # programs: the original and two syntactically derived programs."
        assert proof.nesting_depth >= 2
        assert proof.derived_program_count >= 3
