"""Tests for StackAssignment plumbing."""

import pytest

from repro.measures import TERMINATION, Hypothesis, Stack, StackAssignment
from repro.wf import NATURALS, NotInDomainError


def t_stack(w):
    return Stack([Hypothesis(TERMINATION, w)])


class TestStackAssignment:
    def test_from_dict_lookup(self):
        assignment = StackAssignment.from_dict({"s": t_stack(1)}, NATURALS)
        assert assignment("s").termination_measure() == 1

    def test_from_dict_missing_state(self):
        assignment = StackAssignment.from_dict({"s": t_stack(1)}, NATURALS)
        with pytest.raises(KeyError):
            assignment("other")

    def test_callable_backing(self):
        assignment = StackAssignment(lambda s: t_stack(s), NATURALS)
        assert assignment(3).termination_measure() == 3

    def test_type_checked(self):
        assignment = StackAssignment(lambda s: 42, NATURALS)
        with pytest.raises(TypeError):
            assignment("s")

    def test_validate_values(self):
        good = StackAssignment(lambda s: t_stack(0), NATURALS)
        good.validate_values("s")
        bad = StackAssignment(lambda s: t_stack(-1), NATURALS)
        with pytest.raises(NotInDomainError):
            bad.validate_values("s")

    def test_restricted_falls_back(self):
        primary = StackAssignment.from_dict({"a": t_stack(1)}, NATURALS)
        combined = primary.restricted(lambda s: t_stack(9))
        assert combined("a").termination_measure() == 1
        assert combined("zz").termination_measure() == 9

    def test_restricted_none_is_identity(self):
        primary = StackAssignment.from_dict({"a": t_stack(1)}, NATURALS)
        assert primary.restricted(None) is primary

    def test_description_carried(self):
        assignment = StackAssignment(lambda s: t_stack(0), NATURALS, "demo")
        assert assignment.description == "demo"
