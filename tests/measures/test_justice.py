"""Tests for justice (weak-fairness) measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.completeness import synthesize_measure
from repro.fairness import WEAK_FAIRNESS, find_weakly_fair_cycle
from repro.measures import Hypothesis, Stack, StackAssignment, check_measure
from repro.measures.justice import (
    NotWeaklyTerminatingError,
    check_justice_measure,
    synthesize_justice_measure,
)
from repro.ts import ExplicitSystem, explore
from repro.wf import NATURALS
from repro.workloads import escape_ring, nested_rings, p2, random_system


class TestJusticeChecking:
    def test_p2_justice_measure(self):
        # la is continuously enabled while the loop runs: justice suffices.
        graph = explore(p2(4))
        synthesis = synthesize_justice_measure(graph)
        result = check_justice_measure(graph, synthesis.assignment())
        assert result.is_fair_termination_measure
        assert synthesis.max_stack_height() == 2

    def test_intermittent_enabledness_rejected(self):
        """The unsoundness the continuity condition prevents: on the escape
        ring, `escape` is enabled only at state 0 — a stack blaming it must
        NOT verify under justice (the circling run is weakly fair)."""
        system = escape_ring(3)
        graph = explore(system)
        # μ^escape = ring distance back to state 0 (where escape enables).
        distance = {0: 0, 1: 2, 2: 1}
        table = {}
        for i in range(len(graph)):
            state = graph.state_of(i)
            if state == 3:  # the terminal
                table[state] = Stack([Hypothesis("T", 0)])
            else:
                table[state] = Stack(
                    [Hypothesis("T", 1), Hypothesis("escape", distance[state])]
                )
        assignment = StackAssignment.from_dict(table, NATURALS)
        # As a *strong*-fairness measure this is fine...
        assert check_measure(graph, assignment).ok
        # ... but justice rejects it: advancing from 1 to 2 is neither a
        # continuity step (escape disabled) nor a descent.
        result = check_justice_measure(graph, assignment)
        assert not result.ok
        assert any("V_A-j" in str(v) for v in result.violations)

    def test_measure_decrease_steps_allowed(self):
        # A justice hypothesis may progress by strict decrease while its
        # command is disabled.
        system = ExplicitSystem(
            commands=("go", "goal"),
            initial=[0],
            transitions=[(0, "go", 1), (1, "goal", 2)],
        )
        graph = explore(system)
        table = {
            0: Stack([Hypothesis("T", 2), Hypothesis("goal", 1)]),
            1: Stack([Hypothesis("T", 2), Hypothesis("goal", 0)]),
            2: Stack([Hypothesis("T", 0)]),
        }
        assignment = StackAssignment.from_dict(table, NATURALS)
        result = check_justice_measure(graph, assignment)
        assert result.ok
        reasons = {w.reason for w in result.witnesses}
        assert "decrease" in reasons

    def test_persist_condition_enforced(self):
        # A lower justice hypothesis must stay enabled even when a higher
        # level is active.
        system = ExplicitSystem(
            commands=("spin", "low", "high"),
            initial=[0],
            transitions=[(0, "spin", 0), (0, "low", 1), (0, "high", 2)],
        )
        graph = explore(system)
        # 'low' is enabled at 0 so this particular stack is fine; build a
        # two-state variant where 'low' is disabled at one end.
        system2 = ExplicitSystem(
            commands=("spin", "low", "high"),
            initial=[0],
            transitions=[
                (0, "spin", 3),
                (3, "spin", 0),
                (0, "low", 1),
                (0, "high", 2),
                (3, "high", 2),
            ],
        )
        graph2 = explore(system2)
        table = {
            0: Stack(
                [Hypothesis("T", 1), Hypothesis("low", 0), Hypothesis("high")]
            ),
            3: Stack(
                [Hypothesis("T", 1), Hypothesis("low", 0), Hypothesis("high")]
            ),
            1: Stack([Hypothesis("T", 0)]),
            2: Stack([Hypothesis("T", 0)]),
        }
        assignment = StackAssignment.from_dict(table, NATURALS)
        result = check_justice_measure(graph2, assignment)
        # 'low' is not enabled at state 3, so the spin steps cannot rely on
        # the 'high' hypothesis above it.
        assert not result.ok
        assert any("V_Persist" in str(v) for v in result.violations)


class TestJusticeSynthesis:
    def test_flat_stacks_on_the_strong_hierarchy_family(self):
        """nested_rings needs stacks of height depth+2 under strong
        fairness — but it does NOT terminate under justice (the inner spin
        starves exits that are only intermittently enabled...); check which
        family members justice handles."""
        # rings(0): b with spin + exit_0 both enabled at b continuously.
        graph = explore(nested_rings(0))
        synthesis = synthesize_justice_measure(graph)
        assert check_justice_measure(graph, synthesis.assignment()).ok
        assert synthesis.max_stack_height() == 2
        # rings(1): circling a_1 → b → a_1 keeps exit_1 only intermittently
        # enabled: justice termination fails.
        graph1 = explore(nested_rings(1))
        with pytest.raises(NotWeaklyTerminatingError) as info:
            synthesize_justice_measure(graph1)
        witness = info.value.witness
        assert witness is not None
        assert WEAK_FAIRNESS.is_fair(
            witness.lasso,
            graph1.system.enabled,
            graph1.system.commands(),
        )

    def test_agrees_with_weak_cycle_decision(self):
        for seed in range(40):
            graph = explore(random_system(seed, states=8, commands=3, extra_edges=7))
            weakly_terminates = find_weakly_fair_cycle(graph) is None
            if weakly_terminates:
                synthesis = synthesize_justice_measure(graph)
                result = check_justice_measure(graph, synthesis.assignment())
                assert result.is_fair_termination_measure, seed
            else:
                with pytest.raises(NotWeaklyTerminatingError):
                    synthesize_justice_measure(graph)

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=50_000))
    def test_heights_never_exceed_two(self, seed):
        graph = explore(random_system(seed, states=9, commands=4, extra_edges=8))
        try:
            synthesis = synthesize_justice_measure(graph)
        except NotWeaklyTerminatingError:
            return
        assert synthesis.max_stack_height() <= 2

    def test_incomplete_graph_rejected(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        with pytest.raises(ValueError):
            synthesize_justice_measure(explore(up, max_states=4))

    def test_justice_measure_is_also_a_strong_measure(self):
        """Justice VCs are stricter than strong-fairness VCs (continuity
        implies enabledness-somewhere), so a justice measure certifies
        strong-fair termination too — the termination hierarchy at the
        proof level."""
        for seed in range(30):
            graph = explore(random_system(seed, states=8, commands=3, extra_edges=7))
            try:
                synthesis = synthesize_justice_measure(graph)
            except NotWeaklyTerminatingError:
                continue
            assignment = synthesis.assignment()
            assert check_justice_measure(graph, assignment).ok, seed
            assert check_measure(graph, assignment).ok, seed
