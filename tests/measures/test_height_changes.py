"""Tests for transitions between stacks of different heights.

The paper's stacks may grow and shrink (the contents *above* the active
hypothesis "may change in any way" — including appearing or disappearing);
these tests pin the checker's behaviour at height seams.
"""

from repro.measures import (
    TERMINATION,
    Hypothesis,
    Stack,
    StackAssignment,
    check_measure,
    find_active_level,
)
from repro.ts import ExplicitSystem, explore
from repro.wf import NATURALS


def T(w):
    return Hypothesis(TERMINATION, w)


class TestHeightSeams:
    def test_shrinking_stack_with_t_descent(self):
        # Active at level 0: everything above may vanish.
        data, _ = find_active_level(
            Stack([T(2), Hypothesis("a", 1), Hypothesis("b")]),
            Stack([T(1)]),
            "a",
            frozenset(),
            NATURALS,
        )
        assert data.level == 0

    def test_growing_stack_with_t_descent(self):
        data, _ = find_active_level(
            Stack([T(2)]),
            Stack([T(1), Hypothesis("a", 9), Hypothesis("b")]),
            "b",
            frozenset(),
            NATURALS,
        )
        assert data.level == 0

    def test_shrink_below_active_level_fails(self):
        # The active hypothesis must exist at the same level in BOTH
        # stacks; losing it while T stalls leaves nothing active.
        data, failures = find_active_level(
            Stack([T(1), Hypothesis("a")]),
            Stack([T(1)]),
            "b",
            frozenset({"a"}),
            NATURALS,
        )
        assert data is None

    def test_growth_above_active_enabled_level(self):
        data, _ = find_active_level(
            Stack([T(1), Hypothesis("a")]),
            Stack([T(1), Hypothesis("a"), Hypothesis("c", 7)]),
            "b",
            frozenset({"a"}),
            NATURALS,
        )
        assert (data.level, data.subject) == (1, "a")

    def test_end_to_end_height_mixing(self):
        # A three-state chain whose stacks shrink as progress is made.
        system = ExplicitSystem(
            commands=("go", "other"),
            initial=[0],
            transitions=[(0, "go", 1), (0, "other", 0), (1, "go", 2)],
        )
        graph = explore(system)
        table = {
            0: Stack([T(2), Hypothesis("go", 0)]),
            1: Stack([T(1)]),
            2: Stack([T(0)]),
        }
        result = check_measure(
            graph, StackAssignment.from_dict(table, NATURALS)
        )
        assert result.ok
        # The self-loop relies on 'go' being enabled (level 1); the chain
        # steps use T descent and drop the hypothesis freely.
        levels = {w.transition.command: w.level for w in result.witnesses}
        assert levels["other"] == 1
        assert levels["go"] == 0
