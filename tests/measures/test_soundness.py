"""Tests for the executable Theorem 1 (unfairness witness extraction)."""

import pytest

from repro.fairness import STRONG_FAIRNESS
from repro.measures import (
    MeasureContradiction,
    TERMINATION,
    Hypothesis,
    Stack,
    StackAssignment,
    unfairness_witness,
)
from repro.ts import Lasso, Path
from repro.wf import NATURALS
from repro.workloads import p2, p2_assertion, p4, p4_assertion


def p2_adversarial_lasso(program):
    """The ⟨x=0⟩ lb-self-loop: the run an adversarial scheduler produces."""
    start = program.state(x=0, y=program.state(x=0, y=0)["y"] if False else 5)
    start = next(iter(program.initial_states()))
    return Lasso(
        stem=Path.singleton(start),
        cycle=Path((start, start), ("lb",)),
    )


class TestWitnessExtraction:
    def test_p2_witness_blames_la(self):
        program = p2(5)
        assignment = p2_assertion().compile()
        witness = unfairness_witness(
            program, assignment, p2_adversarial_lasso(program)
        )
        assert witness.command == "la"
        assert witness.level == 1
        assert len(witness.enabled_at) == 1
        # Cross-check against the independent fairness spec.
        lasso = p2_adversarial_lasso(program)
        violations = STRONG_FAIRNESS.violations(
            lasso, program.enabled, program.commands()
        )
        assert [v.command for v in violations] == [witness.command]

    def test_p4_skip_loop_blamed_correctly(self):
        program = p4(distance=2, z0=7, modulus=3)
        assignment = p4_assertion(modulus=3).compile()
        start = next(iter(program.initial_states()))
        lasso = Lasso(
            stem=Path.singleton(start), cycle=Path((start, start), ("lc",))
        )
        witness = unfairness_witness(program, assignment, lasso)
        # On the lc-loop with z=7 (≢ 0 mod 3): la is disabled and its
        # measure is frozen, lb is enabled; the lb-hypothesis at level 2 is
        # the one the proof identifies.
        assert witness.command == "lb"
        assert witness.level == 2

    def test_p4_lc_loop_at_z_multiple_blames_la(self):
        program = p4(distance=2, z0=6, modulus=3)
        assignment = p4_assertion(modulus=3).compile()
        start = next(iter(program.initial_states()))
        # z = 6 ≡ 0 (mod 3): both la and lb are candidates; the *lowest*
        # active level around the cycle is la's level 1 (enabled).
        lasso = Lasso(
            stem=Path.singleton(start), cycle=Path((start, start), ("lc",))
        )
        witness = unfairness_witness(program, assignment, lasso)
        assert witness.command in {"la", "lb"}
        violations = STRONG_FAIRNESS.violations(
            lasso, program.enabled, program.commands()
        )
        assert witness.command in {v.command for v in violations}


class TestContradictions:
    def test_bogus_measure_rejected(self):
        program = p2(5)
        # Constant stacks: nothing is ever active on the lb loop.
        constant = Stack([Hypothesis(TERMINATION, 0)])
        assignment = StackAssignment(lambda s: constant, NATURALS)
        with pytest.raises(MeasureContradiction):
            unfairness_witness(program, assignment, p2_adversarial_lasso(program))

    def test_t_descent_on_cycle_rejected(self):
        program = p2(5)
        # A 2-cycle la;?? does not exist; instead fabricate T-decrease on a
        # self-loop via a stateful counter — the checker must catch that the
        # "measure" decreases at level 0 forever.
        values = iter(range(10**6, 0, -1))
        assignment = StackAssignment(
            lambda s: Stack([Hypothesis(TERMINATION, next(values))]), NATURALS
        )
        with pytest.raises(MeasureContradiction) as info:
            unfairness_witness(program, assignment, p2_adversarial_lasso(program))
        assert "level 0" in str(info.value)

    def test_executed_hypothesis_on_cycle_rejected(self):
        program = p2(5)
        # Stack whose level-1 hypothesis is the executed lb command.
        assignment = StackAssignment(
            lambda s: Stack(
                [Hypothesis(TERMINATION, 0), Hypothesis("lb")]
            ),
            NATURALS,
        )
        with pytest.raises(MeasureContradiction):
            unfairness_witness(program, assignment, p2_adversarial_lasso(program))
