"""Tests for the verification conditions (V_A), (V_NonI), (V_NoC).

The small systems here are built by hand so each condition can be made to
fail in isolation, and the §5 remark about several admissible active
hypotheses can be exercised.
"""

import pytest

from repro.measures import (
    TERMINATION,
    Hypothesis,
    MeasureVerificationError,
    Stack,
    StackAssignment,
    check_measure,
    find_active_level,
)
from repro.ts import ExplicitSystem, explore
from repro.wf import NATURALS


def two_state_system(enabled=None):
    """0 --go--> 1, with 'other' optionally enabled via extra transitions."""
    return ExplicitSystem(
        commands=("go", "other"),
        initial=[0],
        transitions=[(0, "go", 1)] + ([(0, "other", 2)] if enabled else []),
    )


def assignment(table, order=NATURALS):
    return StackAssignment.from_dict(table, order)


def T(w):
    return Hypothesis(TERMINATION, w)


class TestFindActiveLevel:
    def test_termination_decrease_active(self):
        data, _ = find_active_level(
            Stack([T(2)]), Stack([T(1)]), "go", frozenset(), NATURALS
        )
        assert data.level == 0
        assert data.reason == "decrease"

    def test_termination_not_active_without_decrease(self):
        data, failures = find_active_level(
            Stack([T(1)]), Stack([T(1)]), "go", frozenset(), NATURALS
        )
        assert data is None
        assert any("V_A" in f.detail for f in failures)

    def test_enabled_hypothesis_active(self):
        before = Stack([T(1), Hypothesis("other")])
        after = Stack([T(1), Hypothesis("other")])
        data, _ = find_active_level(
            before, after, "go", frozenset({"other"}), NATURALS
        )
        assert (data.level, data.reason) == (1, "enabled")

    def test_measure_decrease_at_level_one(self):
        before = Stack([T(1), Hypothesis("other", 5)])
        after = Stack([T(1), Hypothesis("other", 4)])
        data, _ = find_active_level(before, after, "go", frozenset(), NATURALS)
        assert (data.level, data.reason) == (1, "decrease")

    def test_v_noni_blocks_executed_hypothesis(self):
        before = Stack([T(1), Hypothesis("go", 5)])
        after = Stack([T(1), Hypothesis("go", 4)])
        data, failures = find_active_level(
            before, after, "go", frozenset({"go"}), NATURALS
        )
        assert data is None
        assert any("V_NonI" in f.detail for f in failures)

    def test_v_noc_blocks_changed_prefix(self):
        before = Stack([T(2), Hypothesis("other", 5)])
        after = Stack([T(1), Hypothesis("other", 5)])
        # T decreased, so level 0 is active — fine.  But force level 1 by
        # making level 0 inactive: equal T values and changed la below.
        before2 = Stack([T(1), Hypothesis("other", 5), Hypothesis("go", 0)])
        after2 = Stack([T(1), Hypothesis("other", 4), Hypothesis("go", 0)])
        data, _ = find_active_level(before2, after2, "zz", frozenset(), NATURALS)
        assert data.level == 1
        # A level-2 candidate would fail V_NoC since level 1 changed; check
        # that the level-1 decrease is what is reported, not level 2.
        assert data.subject == "other"
        # Also the original pair: level 0 active by decrease.
        data0, _ = find_active_level(before, after, "zz", frozenset(), NATURALS)
        assert data0.level == 0

    def test_subject_change_stops_search(self):
        before = Stack([T(1), Hypothesis("a", 1)])
        after = Stack([T(1), Hypothesis("b", 1)])
        data, failures = find_active_level(
            before, after, "zz", frozenset({"a", "b"}), NATURALS
        )
        assert data is None
        assert any("changes subject" in f.detail for f in failures)

    def test_bare_hypothesis_needs_enabledness(self):
        before = Stack([T(1), Hypothesis("other")])
        after = Stack([T(1), Hypothesis("other")])
        data, failures = find_active_level(
            before, after, "go", frozenset(), NATURALS
        )
        assert data is None
        assert any("no measure value" in f.detail for f in failures)

    def test_multiple_admissible_levels_lowest_chosen(self):
        # Both level 0 (T decreases) and level 1 (enabled) are admissible;
        # §5: "There may be several choices for an active hypothesis."
        before = Stack([T(2), Hypothesis("other", 1)])
        after = Stack([T(1), Hypothesis("other", 1)])
        data, _ = find_active_level(
            before, after, "go", frozenset({"other"}), NATURALS
        )
        assert data.level == 0


class TestCheckMeasure:
    def test_passing_measure(self):
        system = two_state_system()
        graph = explore(system)
        result = check_measure(
            graph, assignment({0: Stack([T(1)]), 1: Stack([T(0)])})
        )
        assert result.ok
        assert result.is_fair_termination_measure
        assert result.active_levels() == {0: 1}

    def test_failing_measure_collects_violations(self):
        system = two_state_system()
        graph = explore(system)
        result = check_measure(
            graph, assignment({0: Stack([T(0)]), 1: Stack([T(0)])})
        )
        assert not result.ok
        assert len(result.violations) == 1
        assert "V_A" in str(result.violations[0])
        with pytest.raises(MeasureVerificationError):
            result.raise_if_failed()

    def test_values_validated_against_order(self):
        system = two_state_system()
        graph = explore(system)
        from repro.wf import NotInDomainError

        with pytest.raises(NotInDomainError):
            check_measure(
                graph, assignment({0: Stack([T(-1)]), 1: Stack([T(-2)])})
            )

    def test_non_stack_return_rejected(self):
        system = two_state_system()
        graph = explore(system)
        bad = StackAssignment(lambda state: "not a stack", NATURALS)
        with pytest.raises(TypeError):
            check_measure(graph, bad)

    def test_incomplete_graph_not_a_full_measure(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        graph = explore(up, max_states=5)
        # Any decreasing measure works on the explored region; completeness
        # must still be reported as missing.
        table = {
            graph.state_of(i): Stack([T(10 - i)]) for i in range(len(graph))
        }
        result = check_measure(graph, assignment(table))
        assert result.ok
        assert not result.complete
        assert not result.is_fair_termination_measure

    def test_summary_mentions_status(self):
        system = two_state_system()
        graph = explore(system)
        result = check_measure(
            graph, assignment({0: Stack([T(1)]), 1: Stack([T(0)])})
        )
        assert "PASS" in result.summary()

    def test_non_well_founded_order_fails(self):
        from repro.wf import FiniteOrder

        bogus = FiniteOrder(["w", "v"], [("w", "v"), ("v", "w")])
        system = two_state_system()
        graph = explore(system)
        result = check_measure(
            graph,
            assignment(
                {0: Stack([T("w")]), 1: Stack([T("v")])}, order=bogus
            ),
        )
        assert not result.order_well_founded
        assert not result.ok
