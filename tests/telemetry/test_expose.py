"""The exposition endpoint: Prometheus rendering and the live server.

The server is stdlib-only and binds an ephemeral loopback port, so these
tests exercise the real HTTP path with ``urllib`` — no fixtures beyond
the shared telemetry reset.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import events
from repro.telemetry.expose import (
    ExpositionServer,
    linger_seconds,
    render_prometheus,
)
from repro.telemetry.schema import validate_event


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestRenderPrometheus:
    def test_counters_gauges_histograms(self):
        metrics = {
            "counters": {"explore.states": 7},
            "gauges": {"parallel.pool.workers": 4},
            "histograms": {
                "shard.round_s": {
                    "count": 2, "total": 1.5, "min": 0.5, "max": 1.0,
                },
            },
        }
        text = render_prometheus(metrics)
        assert "# TYPE repro_explore_states_total counter" in text
        assert "repro_explore_states_total 7" in text
        assert "# TYPE repro_parallel_pool_workers gauge" in text
        assert "repro_parallel_pool_workers 4" in text
        assert "# TYPE repro_shard_round_s summary" in text
        assert "repro_shard_round_s_count 2" in text
        assert "repro_shard_round_s_sum 1.5" in text
        assert "repro_shard_round_s_min 0.5" in text
        assert "repro_shard_round_s_max 1.0" in text
        assert text.endswith("\n")

    def test_events_gauge_tracks_last_seq(self):
        events.emit("run.start")
        events.emit("run.start")
        text = render_prometheus({"counters": {}, "gauges": {},
                                  "histograms": {}})
        assert "repro_events 2" in text

    def test_empty_histogram_omits_min_max(self):
        metrics = {
            "counters": {}, "gauges": {},
            "histograms": {
                "a.b": {"count": 0, "total": 0.0, "min": None, "max": None},
            },
        }
        text = render_prometheus(metrics)
        assert "repro_a_b_count 0" in text
        assert "_min" not in text and "_max" not in text

    def test_live_registry_is_the_default_source(self):
        telemetry.enable()
        telemetry.count("explore.states", 3)
        assert "repro_explore_states_total 3" in render_prometheus()


class TestExpositionServer:
    @pytest.fixture()
    def server(self):
        server = ExpositionServer(port=0)
        server.start()
        yield server
        server.stop()

    def test_healthz(self, server):
        events.emit("run.start")
        status, headers, body = _get(server.url + "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["events"] == 1
        assert payload["uptime_s"] >= 0.0

    def test_metrics(self, server):
        telemetry.enable()
        telemetry.count("explore.states", 9)
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_explore_states_total 9" in body

    def test_events_ndjson_tail(self, server):
        events.emit("run.start", command="decide")
        events.emit("explore.summary", states=4)
        status, headers, body = _get(server.url + "/events")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert [event["event"] for event in lines] == [
            "run.start", "explore.summary",
        ]
        for event in lines:
            validate_event(event)

    def test_events_since_and_limit(self, server):
        for _ in range(5):
            events.emit("run.start")
        _, _, body = _get(server.url + "/events?since=3")
        assert [json.loads(l)["seq"] for l in body.splitlines() if l] == [4, 5]
        _, _, body = _get(server.url + "/events?limit=2")
        assert [json.loads(l)["seq"] for l in body.splitlines() if l] == [4, 5]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server.url + "/nope")
        assert info.value.code == 404
        assert "unknown path" in info.value.read().decode()

    def test_server_counts_as_a_live_consumer(self):
        assert not events.live()
        with ExpositionServer(port=0):
            assert events.live()
        assert not events.live()

    def test_start_and_stop_are_idempotent(self):
        server = ExpositionServer(port=0)
        port = server.start()
        assert server.start() == port  # second start: same binding
        server.stop()
        server.stop()  # second stop: no-op
        assert not events.live()


class TestLinger:
    def test_defaults_to_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPOSE_LINGER", raising=False)
        assert linger_seconds() == 0.0

    def test_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSE_LINGER", "2.5")
        assert linger_seconds() == 2.5
        monkeypatch.setenv("REPRO_EXPOSE_LINGER", "-3")
        assert linger_seconds() == 0.0
        monkeypatch.setenv("REPRO_EXPOSE_LINGER", "junk")
        assert linger_seconds() == 0.0
