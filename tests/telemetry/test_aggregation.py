"""Cross-process metrics aggregation: worker deltas must sum exactly.

The deterministic engine counters — transitions checked, states expanded,
posts produced — are counted inside the chunk-engine functions that are
simultaneously the serial path and the pool worker, so the parent's
totals must be *identical* for jobs=1, 2 and 4.  These tests force the
pool on (``REPRO_FORCE_PARALLEL=1``) so the worker-collection path
actually runs even on single-core CI machines.
"""

import pytest

from repro import telemetry
from repro.engine.graphstore import explore_with_cache
from repro.engine.parallel import parallel_map
from repro.completeness.synthesis import synthesize_measure
from repro.measures.verification import check_measure
from repro.ts import explore
from repro.workloads import counter_grid

JOB_COUNTS = (1, 2, 4)


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


def _counting_task(n):
    """Module-level so the fork-based pool can pickle it."""
    telemetry.count("test.tasks")
    telemetry.observe("test.value", float(n))
    return n * n


def _counters():
    return telemetry.registry().snapshot()["counters"]


class TestParallelMapCollection:
    def test_worker_counts_merge_into_parent(self, force_parallel):
        telemetry.enable()
        items = list(range(8))
        results = parallel_map(_counting_task, items, n_jobs=2)
        assert results == [n * n for n in items]
        snap = telemetry.registry().snapshot()
        assert snap["counters"]["test.tasks"] == len(items)
        histogram = snap["histograms"]["test.value"]
        assert histogram["count"] == len(items)
        assert histogram["total"] == float(sum(items))
        assert snap["histograms"]["parallel.task_s"]["count"] == len(items)
        assert snap["counters"]["parallel.tasks"] == len(items)

    def test_disabled_runs_ship_unwrapped_tasks(self, force_parallel):
        results = parallel_map(_counting_task, list(range(4)), n_jobs=2)
        assert results == [0, 1, 4, 9]
        assert _counters() == {}  # nothing collected anywhere


class TestPipelineTotalsAcrossJobCounts:
    def test_verify_transitions_identical_for_all_job_counts(
        self, force_parallel
    ):
        graph = explore(counter_grid(5, 5))
        assignment = synthesize_measure(graph).assignment()
        totals = {}
        for jobs in JOB_COUNTS:
            telemetry.reset()
            telemetry.enable()
            check = check_measure(graph, assignment, n_jobs=jobs)
            assert not check.violations
            counters = _counters()
            totals[jobs] = {
                name: counters[name]
                for name in counters
                if name.startswith("verify.")
            }
            telemetry.disable()
        assert totals[1]["verify.transitions"] == len(graph.transitions)
        # jobs>1 routes through the columnar plane, which adds its own
        # verify.plane.* bookkeeping; the semantic verify.* totals the
        # plane decodes back into must still be identical to serial.
        semantic = {
            jobs: {
                name: count
                for name, count in counted.items()
                if not name.startswith("verify.plane.")
            }
            for jobs, counted in totals.items()
        }
        assert semantic[2] == semantic[1]
        assert semantic[4] == semantic[1]
        for jobs in (2, 4):
            assert totals[jobs]["verify.plane.engaged"] == 1
            assert (
                totals[jobs]["verify.plane.rows"]
                == totals[1]["verify.transitions"]
            )

    def test_explore_totals_identical_serial_and_sharded(
        self, force_parallel
    ):
        per_jobs = {}
        for jobs in JOB_COUNTS:
            telemetry.reset()
            telemetry.enable()
            graph = explore(counter_grid(5, 5), n_jobs=jobs)
            counters = _counters()
            per_jobs[jobs] = (len(graph), counters)
            telemetry.disable()
        states, serial = per_jobs[1]
        # jobs=1 routes to the serial BFS: explore.* totals, no shard.*.
        assert serial["explore.states"] == states
        assert "shard.states_expanded" not in serial
        for jobs in (2, 4):
            _, counters = per_jobs[jobs]
            assert counters["explore.states"] == states
            assert counters["shard.states_expanded"] == states
            assert counters["explore.transitions"] == (
                serial["explore.transitions"]
            )
            # The sharded run actually fanned out.
            assert counters["shard.parallel_rounds"] > 0
        # Worker-side counts aggregate to the same totals at any width.
        assert per_jobs[2][1]["shard.posts"] == per_jobs[4][1]["shard.posts"]

    def test_synthesis_totals_identical_across_job_counts(
        self, force_parallel
    ):
        graph = explore(counter_grid(5, 5))
        totals = {}
        for jobs in JOB_COUNTS:
            telemetry.reset()
            telemetry.enable()
            synthesize_measure(graph, n_jobs=jobs)
            counters = _counters()
            totals[jobs] = {
                name: counters[name]
                for name in counters
                if name.startswith("synthesize.")
            }
            telemetry.disable()
        assert totals[1]["synthesize.regions"] > 0
        assert totals[2] == totals[1]
        assert totals[4] == totals[1]


class TestGraphStoreCounters:
    def test_miss_store_then_hit(self, tmp_path):
        telemetry.enable()
        program = counter_grid(4, 4)
        _, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert not hit
        counters = _counters()
        assert counters["graphstore.miss"] == 1
        assert counters["graphstore.store"] == 1
        assert counters["graphstore.chunk.miss"] > 0
        assert counters["graphstore.bytes.written"] > 0
        _, hit = explore_with_cache(program, cache_dir=tmp_path)
        assert hit
        counters = _counters()
        assert counters["graphstore.hit"] == 1
        assert counters["graphstore.bytes.mapped"] > 0

    def test_successor_cache_counters_surface_in_explore(self):
        telemetry.enable()
        program = counter_grid(4, 4)
        explore(program)
        first = _counters()
        assert first["succache.miss"] > 0
        explore(program)  # same instance: the successor cache is warm now
        second = _counters()
        assert second["succache.hit"] > first.get("succache.hit", 0)
