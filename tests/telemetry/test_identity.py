"""Telemetry must be invisible to results: bit-identical graphs, clean CLI.

Collection may add wall time but never changes what the engine computes —
the canonical :func:`~repro.engine.shard.graph_digest` must agree with
telemetry on and off, serial and sharded.  The CLI smoke tests cover the
``--trace``/``--metrics-out``/``--progress`` plumbing end to end.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.engine.shard import graph_digest
from repro.telemetry import validate_snapshot
from repro.ts import explore
from repro.workloads import counter_grid, nested_rings

P2 = "examples/assertions/p2.gcl"


def _digest(make_system, n_jobs=None):
    return graph_digest(explore(make_system(), n_jobs=n_jobs))


class TestBitIdentity:
    @pytest.mark.parametrize("make", [
        lambda: counter_grid(5, 5),
        lambda: nested_rings(3),
    ])
    def test_serial_explore_digest_unchanged(self, make):
        baseline = _digest(make)
        telemetry.enable()
        assert _digest(make) == baseline

    def test_sharded_explore_digest_unchanged(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        make = lambda: counter_grid(5, 5)
        baseline = _digest(make, n_jobs=2)
        telemetry.enable()
        assert _digest(make, n_jobs=2) == baseline
        assert _digest(make) == baseline  # serial agrees too

    def test_progress_line_does_not_change_the_graph(self, capsys):
        baseline = _digest(lambda: counter_grid(5, 5))
        telemetry.enable(progress=True)
        assert _digest(lambda: counter_grid(5, 5)) == baseline


class TestCliSinks:
    def test_metrics_out_writes_a_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(
            ["synthesize", P2, "--metrics-out", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        validate_snapshot(payload)
        counters = payload["metrics"]["counters"]
        assert counters["explore.runs"] == 1
        assert counters["verify.transitions"] > 0
        names = [span["name"] for span in payload["spans"]]
        assert names == ["explore", "synthesize", "verify"]

    def test_trace_prints_the_span_tree_to_stderr(self, capsys):
        assert main(["synthesize", P2, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err
        assert "explore" in captured.err
        assert "synthesize" in captured.err
        # stdout is unchanged user output, footer included
        assert "engine:" in captured.out

    def test_cli_output_identical_with_and_without_sinks(
        self, tmp_path, capsys
    ):
        main(["synthesize", P2])
        plain = capsys.readouterr().out
        main([
            "synthesize", P2,
            "--trace",
            "--metrics-out", str(tmp_path / "m.json"),
            "--progress",
        ])
        instrumented = capsys.readouterr().out

        def stable(text):
            # Timings jitter run to run; compare everything but digits.
            return "".join(ch for ch in text if not ch.isdigit())

        assert stable(instrumented) == stable(plain)

    def test_cli_disables_telemetry_on_exit(self):
        main(["explore", P2])
        assert not telemetry.enabled()


class TestDisabledAllocatesNothing:
    def test_no_spans_no_metrics_after_full_pipeline(self):
        from repro.completeness.synthesis import synthesize_measure
        from repro.measures.verification import check_measure

        graph = explore(counter_grid(4, 4))
        synthesis = synthesize_measure(graph)
        check_measure(graph, synthesis.assignment())
        assert telemetry.root_spans() == []
        snap = telemetry.snapshot()
        assert snap["metrics"] == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert snap["spans"] == []
