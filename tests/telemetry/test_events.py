"""The structured event bus: envelope, catalogue, ring, sinks, postmortem.

Three contracts under test: (1) every emitted event validates against the
version-1 envelope schema with strictly increasing sequence numbers; (2)
the flight recorder is bounded yet always contiguous, so a postmortem
tail provably has no gaps; (3) event production never changes engine
results — graph digests are bit-identical with consumers attached, for
any job count.
"""

import io
import json

import pytest

from repro import telemetry
from repro.engine.shard import graph_digest
from repro.fairness.checker import check_fair_termination_streaming
from repro.telemetry import events
from repro.telemetry.schema import (
    EventSchemaError,
    validate_event,
    validate_event_stream,
    validate_postmortem,
)
from repro.telemetry.sinks import NdjsonEventSink, write_postmortem
from repro.ts import explore
from repro.workloads import counter_grid, nested_rings


class TestEnvelope:
    def test_emit_stamps_the_full_envelope(self):
        event = events.emit("run.start", command="explore", pid=1)
        assert set(event) == {"v", "seq", "ts", "mono", "event", "data"}
        assert event["v"] == events.EVENT_VERSION
        assert event["seq"] == 1
        assert event["event"] == "run.start"
        assert event["data"] == {"command": "explore", "pid": 1}
        validate_event(event)

    def test_sequence_numbers_are_strictly_increasing(self):
        seqs = [events.emit("run.start")["seq"] for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="not in the catalogue"):
            events.emit("explore.made_up")

    def test_kind_objects_and_names_are_interchangeable(self):
        by_object = events.emit(events.EXPLORE_SUMMARY, states=1)
        by_name = events.emit("explore.summary", states=1)
        assert by_object["event"] == by_name["event"] == "explore.summary"

    def test_every_catalogue_entry_is_documented_and_dotted(self):
        for name, kind in events.CATALOGUE.items():
            assert kind.name == name
            assert "." in name and name == name.lower()
            assert kind.doc.strip()


class TestFlightRecorder:
    def test_ring_is_bounded_and_contiguous(self):
        telemetry.reset_events(capacity=8)
        for _ in range(20):
            events.emit("run.start")
        tail = telemetry.flight_recorder().tail()
        assert len(tail) == 8
        seqs = [event["seq"] for event in tail]
        assert seqs == list(range(13, 21))  # contiguous, most recent last

    def test_tail_n_returns_most_recent(self):
        for _ in range(5):
            events.emit("run.start")
        tail = telemetry.flight_recorder().tail(2)
        assert [event["seq"] for event in tail] == [4, 5]

    def test_capacity_from_environment(self, monkeypatch):
        monkeypatch.setenv(events.RING_ENV, "3")
        telemetry.reset_events()
        assert telemetry.flight_recorder().capacity == 3
        for _ in range(9):
            events.emit("run.start")
        assert len(telemetry.flight_recorder().tail()) == 3

    def test_reset_restarts_sequence_numbers(self):
        events.emit("run.start")
        events.emit("run.start")
        telemetry.reset_events()
        assert telemetry.last_seq() == 0
        assert events.emit("run.start")["seq"] == 1


class TestSubscribers:
    def test_subscribers_receive_every_event(self):
        received = []
        telemetry.subscribe(received.append)
        try:
            events.emit("run.start")
            events.emit("run.end")
        finally:
            telemetry.unsubscribe(received.append)
        events.emit("run.start")  # after unsubscribe: not delivered
        assert [event["event"] for event in received] == ["run.start", "run.end"]

    def test_failing_subscriber_never_breaks_emission(self):
        def boom(event):
            raise RuntimeError("sink failure")

        received = []
        telemetry.subscribe(boom)
        telemetry.subscribe(received.append)
        try:
            event = events.emit("run.start")
        finally:
            telemetry.unsubscribe(boom)
            telemetry.unsubscribe(received.append)
        assert event["seq"] == 1
        assert received == [event]

    def test_live_tracks_subscribers_and_taps(self):
        assert not events.live()
        sink = []
        telemetry.subscribe(sink.append)
        assert events.live()
        telemetry.unsubscribe(sink.append)
        assert not events.live()
        events.add_tap()
        assert events.live()
        events.remove_tap()
        assert not events.live()

    def test_exploration_ticker_only_when_live(self):
        assert events.exploration_ticker() is None
        events.add_tap()
        try:
            assert events.exploration_ticker() is not None
        finally:
            events.remove_tap()


class TestTickers:
    def test_explore_ticker_emits_when_interval_elapsed(self, monkeypatch):
        monkeypatch.setattr(events, "ROUND_INTERVAL_S", 0.0)
        ticker = events.ExploreTicker()
        for states in (4, 8, 12):
            ticker.tick(states, queued=2, depth=1)
        tail = telemetry.flight_recorder().tail()
        assert [event["event"] for event in tail] == ["explore.progress"] * 3
        assert [event["data"]["states"] for event in tail] == [4, 8, 12]

    def test_explore_ticker_respects_interval(self, monkeypatch):
        monkeypatch.setattr(events, "ROUND_INTERVAL_S", 3600.0)
        ticker = events.ExploreTicker()
        for states in range(1, 10):
            ticker.tick(states, queued=0, depth=0)
        # The first call emits; everything after sits inside the interval.
        assert len(telemetry.flight_recorder().tail()) == 1

    def test_serial_explore_strides_at_the_call_site(self, monkeypatch):
        # The hot loop only builds tick arguments every PROGRESS_STRIDE
        # expansions, so a stride larger than the state space means the
        # ticker never fires even with a consumer attached.
        monkeypatch.setattr(events, "PROGRESS_STRIDE", 10**9)
        received = []
        telemetry.subscribe(received.append)
        try:
            explore(counter_grid(5, 5))
        finally:
            telemetry.unsubscribe(received.append)
        assert not any(
            e["event"] == "explore.progress" for e in received
        )

    def test_round_ticker_emits_first_round_then_throttles(self, monkeypatch):
        monkeypatch.setattr(events, "ROUND_INTERVAL_S", 3600.0)
        ticker = events.round_ticker()
        for round_depth in range(6):
            ticker.tick(round_depth, pending=3, states=9, workers=2,
                        dispatch="sharded")
        tail = telemetry.flight_recorder().tail()
        assert len(tail) == 1
        assert tail[0]["data"] == {
            "round": 0, "pending": 3, "states": 9, "workers": 2,
            "dispatch": "sharded",
        }


class TestValidateEvent:
    def _good(self):
        return events.emit("run.start", command="explore")

    def test_rejects_wrong_version(self):
        event = dict(self._good(), v=99)
        with pytest.raises(EventSchemaError, match=r"\.v"):
            validate_event(event)

    def test_rejects_missing_and_extra_keys(self):
        event = self._good()
        missing = {key: value for key, value in event.items() if key != "mono"}
        with pytest.raises(EventSchemaError, match="missing"):
            validate_event(missing)
        with pytest.raises(EventSchemaError, match="unknown"):
            validate_event(dict(event, bogus=1))

    def test_rejects_unknown_event_name(self):
        event = dict(self._good(), event="explore.not_a_thing")
        with pytest.raises(EventSchemaError, match="catalogue"):
            validate_event(event)

    def test_rejects_bad_sequence_numbers(self):
        for bad in (0, -3, "1", True):
            with pytest.raises(EventSchemaError, match="seq"):
                validate_event(dict(self._good(), seq=bad))

    def test_rejects_non_scalar_data(self):
        event = dict(self._good(), data={"nested": {"too": "deep"}})
        with pytest.raises(EventSchemaError, match="scalar"):
            validate_event(event)

    def test_allows_lists_of_scalars(self):
        validate_event(dict(self._good(), data={"labels": ["a", "b", 3]}))


class TestNdjsonSink:
    def test_every_line_parses_and_validates_independently(self, tmp_path):
        path = tmp_path / "events.ndjson"
        sink = NdjsonEventSink(path)
        telemetry.subscribe(sink)
        try:
            events.emit("run.start", command="explore")
            events.emit("explore.summary", states=5, complete=True)
            events.emit("run.end", exit_code=0)
        finally:
            sink.close()
        text = path.read_text()
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == 3
        for line in lines:
            validate_event(json.loads(line))  # independently parseable
        parsed = validate_event_stream(text)
        assert [event["event"] for event in parsed] == [
            "run.start", "explore.summary", "run.end",
        ]
        assert sink.written == 3

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.ndjson"
        first = NdjsonEventSink(path)
        first({"v": 1, "seq": 1, "ts": 0, "mono": 0,
               "event": "run.start", "data": {}})
        first.close()
        second = NdjsonEventSink(path)
        second({"v": 1, "seq": 2, "ts": 0, "mono": 0,
                "event": "run.end", "data": {}})
        second.close()
        assert len(validate_event_stream(path.read_text())) == 2

    def test_stream_validator_rejects_out_of_order_lines(self):
        lines = [
            json.dumps({"v": 1, "seq": 5, "ts": 0, "mono": 0,
                        "event": "run.start", "data": {}}),
            json.dumps({"v": 1, "seq": 4, "ts": 0, "mono": 0,
                        "event": "run.end", "data": {}}),
        ]
        with pytest.raises(EventSchemaError, match="increase"):
            validate_event_stream("\n".join(lines))

    def test_stream_validator_rejects_torn_lines(self):
        with pytest.raises(EventSchemaError, match="parseable"):
            validate_event_stream('{"v": 1, "seq":')


class TestEngineEmission:
    def test_explore_emits_a_summary(self):
        graph = explore(counter_grid(3, 3))
        tail = telemetry.flight_recorder().tail()
        summaries = [e for e in tail if e["event"] == "explore.summary"]
        assert summaries
        data = summaries[-1]["data"]
        assert data["states"] == len(graph)
        assert data["complete"] is True
        assert data["system"] == getattr(graph.system, "name",
                                         type(graph.system).__name__)

    def test_serial_explore_heartbeats_when_live(self, monkeypatch):
        monkeypatch.setattr(events, "PROGRESS_STRIDE", 8)
        monkeypatch.setattr(events, "ROUND_INTERVAL_S", 0.0)
        received = []
        telemetry.subscribe(received.append)
        try:
            explore(counter_grid(5, 5))
        finally:
            telemetry.unsubscribe(received.append)
        progress = [e for e in received if e["event"] == "explore.progress"]
        assert progress, "a live consumer must see exploration heartbeats"
        states = [e["data"]["states"] for e in progress]
        assert states == sorted(states)

    def test_sharded_explore_emits_round_events(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        monkeypatch.setattr(events, "ROUND_INTERVAL_S", 0.0)
        explore(counter_grid(4, 4), n_jobs=2)
        rounds = [
            e for e in telemetry.flight_recorder().tail()
            if e["event"] == "explore.round"
        ]
        assert rounds
        depths = [e["data"]["round"] for e in rounds]
        assert depths == sorted(depths)
        for event in rounds:
            assert event["data"]["dispatch"]
            validate_event(event)

    def test_streaming_decide_emits_stages_and_verdict(self):
        result = check_fair_termination_streaming(nested_rings(2))
        tail = telemetry.flight_recorder().tail()
        stages = [e for e in tail if e["event"] == "stream.stage"]
        verdicts = [e for e in tail if e["event"] == "decide.verdict"]
        assert stages and verdicts
        assert stages[0]["data"]["stage"] == 1
        verdict = verdicts[-1]["data"]
        assert verdict["streaming"] is True
        assert verdict["fairly_terminates"] == result.fairly_terminates
        assert verdict["states"] == result.states_explored

    def test_graphstore_outcomes_cold_then_hit(self, tmp_path):
        from repro.engine.graphstore import explore_with_cache
        from repro.gcl.program import parse_program

        program = parse_program(
            "program T var x := 0 do a: x < 3 -> x := x + 1 od"
        )
        explore_with_cache(program, cache_dir=tmp_path)
        explore_with_cache(program, cache_dir=tmp_path)
        outcomes = [
            e["data"] for e in telemetry.flight_recorder().tail()
            if e["event"] == "graphstore.outcome"
        ]
        assert [o["kind"] for o in outcomes] == ["cold", "hit"]
        assert outcomes[0]["hit"] is False
        assert outcomes[1]["hit"] is True

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_digests_bit_identical_with_events_on(self, jobs, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        make = lambda: counter_grid(5, 5)
        baseline = graph_digest(explore(make(), n_jobs=jobs))
        sink = []
        telemetry.subscribe(sink.append)
        events.add_tap()  # heartbeats on, like a live --expose run
        try:
            with_events = graph_digest(explore(make(), n_jobs=jobs))
        finally:
            events.remove_tap()
            telemetry.unsubscribe(sink.append)
        assert with_events == baseline

    def test_observer_adaptor_reports_per_round_progress(self):
        observer = telemetry.ExplorationEventObserver()
        graph = explore(counter_grid(4, 4), observer=observer)
        final = observer.finish()
        progress = [
            e for e in telemetry.flight_recorder().tail()
            if e["event"] == "explore.progress"
        ]
        assert len(progress) >= 2  # one per completed BFS round + finish
        assert final["data"]["states"] == len(graph)
        depths = [e["data"]["depth"] for e in progress]
        assert depths == sorted(depths)


class TestPostmortem:
    def _crash(self):
        try:
            raise RuntimeError("exploration exploded")
        except RuntimeError as error:
            return error

    def test_document_validates_and_tail_is_contiguous(self, tmp_path):
        telemetry.reset_events(capacity=4)
        telemetry.enable()
        for _ in range(9):
            events.emit("run.start", command="decide")
        path = write_postmortem(
            self._crash(), command="decide", argv=["decide", "x.gcl"],
            directory=tmp_path,
        )
        document = json.loads(open(path).read())
        validate_postmortem(document)
        assert document["command"] == "decide"
        assert document["error"]["type"] == "RuntimeError"
        assert "exploration exploded" in document["error"]["message"]
        assert any(
            "RuntimeError" in line for line in document["error"]["traceback"]
        )
        seqs = [event["seq"] for event in document["events"]]
        assert seqs == [6, 7, 8, 9]  # the ring's contiguous suffix

    def test_validator_rejects_a_gap_in_the_tail(self, tmp_path):
        telemetry.enable()
        for _ in range(4):
            events.emit("run.start")
        path = write_postmortem(self._crash(), directory=tmp_path)
        document = json.loads(open(path).read())
        del document["events"][1]  # tamper: make a seq gap
        with pytest.raises(EventSchemaError, match="contiguous"):
            validate_postmortem(document)

    def test_validator_rejects_missing_keys(self, tmp_path):
        path = write_postmortem(self._crash(), directory=tmp_path)
        document = json.loads(open(path).read())
        del document["metrics"]
        with pytest.raises(EventSchemaError, match="missing"):
            validate_postmortem(document)
