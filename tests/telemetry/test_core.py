"""Unit tests for the telemetry core: spans, registry, sinks, schema.

The subsystem's two contracts are (a) disabled collection is free — the
shared no-op span, guarded counters — and (b) everything collected fits
the stable snapshot schema that ``--metrics-out`` exports and CI
validates.
"""

import io
import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NOOP_SPAN,
    SNAPSHOT_VERSION,
    HistogramSummary,
    MetricsRegistry,
    ProgressLine,
    SnapshotSchemaError,
    render_trace,
    validate_snapshot,
)
from repro.telemetry.sinks import TRACE_SIBLING_LIMIT


class TestDisabledMode:
    def test_span_is_the_shared_noop_singleton(self):
        assert not telemetry.enabled()
        assert telemetry.span("explore") is NOOP_SPAN
        assert telemetry.span("verify", jobs=4) is NOOP_SPAN

    def test_noop_span_context_records_nothing(self):
        with telemetry.span("explore") as sp:
            sp.set("states", 11)
            sp.inc("rounds")
        assert telemetry.root_spans() == []
        assert telemetry.current_span() is NOOP_SPAN

    def test_metrics_are_dropped(self):
        telemetry.count("explore.states", 5)
        telemetry.gauge("pool.workers", 4)
        telemetry.observe("round_s", 0.5)
        snap = telemetry.snapshot()
        assert snap["metrics"] == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_progress_reporter_is_none(self):
        assert telemetry.progress_reporter() is None


class TestEnabledMode:
    def test_counters_gauges_histograms(self):
        telemetry.enable()
        telemetry.count("explore.states", 5)
        telemetry.count("explore.states", 2)
        telemetry.gauge("pool.workers", 4)
        telemetry.observe("round_s", 0.5)
        telemetry.observe("round_s", 1.5)
        metrics = telemetry.snapshot()["metrics"]
        assert metrics["counters"]["explore.states"] == 7
        assert metrics["gauges"]["pool.workers"] == 4
        assert metrics["histograms"]["round_s"] == {
            "count": 2,
            "total": 2.0,
            "min": 0.5,
            "max": 1.5,
        }

    def test_span_nesting_and_annotations(self):
        telemetry.enable()
        with telemetry.span("explore", system="P2") as outer:
            with telemetry.span("shard_round", round=0) as inner:
                assert telemetry.current_span() is inner
                inner.inc("posts", 3)
            outer.set("states", 11)
        roots = telemetry.root_spans()
        assert [root.name for root in roots] == ["explore"]
        assert roots[0].attrs == {"system": "P2", "states": 11}
        assert [child.name for child in roots[0].children] == ["shard_round"]
        assert roots[0].children[0].counters == {"posts": 3}
        assert roots[0].seconds >= roots[0].children[0].seconds >= 0.0

    def test_phase_seconds_sums_repeated_roots(self):
        telemetry.enable()
        with telemetry.span("explore"):
            pass
        with telemetry.span("explore"):
            pass
        with telemetry.span("verify"):
            pass
        phases = telemetry.phase_seconds()
        assert set(phases) == {"explore", "verify"}
        assert phases["explore"] >= 0.0

    def test_reset_drops_spans_and_metrics(self):
        telemetry.enable()
        telemetry.count("a.b")
        with telemetry.span("explore"):
            pass
        telemetry.reset()
        assert telemetry.root_spans() == []
        assert telemetry.snapshot()["metrics"]["counters"] == {}


class TestHistogramSummary:
    def test_merge_is_exact(self):
        left, right = HistogramSummary(), HistogramSummary()
        for value in (1.0, 5.0):
            left.observe(value)
        for value in (0.5, 2.0, 9.0):
            right.observe(value)
        left.merge(right.snapshot())
        assert left.snapshot() == {
            "count": 5,
            "total": 17.5,
            "min": 0.5,
            "max": 9.0,
        }

    def test_merging_an_empty_summary_is_a_noop(self):
        summary = HistogramSummary()
        summary.observe(2.0)
        summary.merge(HistogramSummary().snapshot())
        assert summary.snapshot()["count"] == 1


class TestRegistryMerge:
    def test_worker_delta_semantics(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.count("shard.posts", 10)
        parent.gauge("pool.workers", 2)
        worker.count("shard.posts", 7)
        worker.gauge("pool.workers", 4)
        worker.observe("task_s", 0.25)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["shard.posts"] == 17  # counters add
        assert snap["gauges"]["pool.workers"] == 4  # last write wins
        assert snap["histograms"]["task_s"]["count"] == 1

    def test_worker_collect_restores_disabled_state(self):
        result, delta, elapsed = telemetry.worker_collect(
            _fake_worker_task, 3
        )
        assert result == 6
        assert delta["counters"]["test.calls"] == 1
        assert elapsed >= 0.0
        assert not telemetry.enabled()  # restored

    def test_merge_worker_metrics_requires_enabled(self):
        delta = {"counters": {"a.b": 1}, "gauges": {}, "histograms": {}}
        telemetry.merge_worker_metrics(delta)
        assert telemetry.registry().snapshot()["counters"] == {}
        telemetry.enable()
        telemetry.merge_worker_metrics(delta)
        assert telemetry.registry().snapshot()["counters"] == {"a.b": 1}


class TestSchema:
    def test_live_snapshot_validates(self):
        telemetry.enable()
        telemetry.count("explore.states", 5)
        telemetry.gauge("parallel.pool.workers", 2)
        telemetry.observe("shard.merge_s", 0.5)
        with telemetry.span("explore", system="P2"):
            with telemetry.span("shard_round", round=0):
                pass
        validate_snapshot(telemetry.snapshot())  # must not raise

    def test_version_mismatch_rejected(self):
        snap = telemetry.snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot(snap)

    def test_undotted_metric_name_rejected(self):
        telemetry.enable()
        telemetry.count("nodots")
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot(telemetry.snapshot())

    def test_malformed_histogram_rejected(self):
        telemetry.enable()
        snap = telemetry.snapshot()
        snap["metrics"]["histograms"]["a.b"] = {"count": 1}
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot(snap)

    def test_non_dict_span_rejected(self):
        snap = telemetry.snapshot()
        snap["spans"] = ["not-a-span"]
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot(snap)

    def test_alias_shim_removed(self):
        # The ``succcache.*`` (triple-c typo) compatibility shim lived for
        # exactly one release; the canonical spelling is the only one now.
        import repro.telemetry as telemetry_pkg
        import repro.telemetry.schema as schema

        assert not hasattr(schema, "DEPRECATED_METRIC_ALIASES")
        assert not hasattr(schema, "canonical_metric_name")
        assert "DEPRECATED_METRIC_ALIASES" not in telemetry_pkg.__all__
        assert "canonical_metric_name" not in telemetry_pkg.__all__

    def test_succache_emitters_use_canonical_names(self):
        # Every successor-cache hit/miss the engine emits must carry the
        # canonical ``succache.*`` spelling (and validate cleanly).
        telemetry.enable()
        telemetry.count("succache.hit", 2)
        telemetry.count("succache.miss", 1)
        snap = validate_snapshot(telemetry.snapshot())
        counters = snap["metrics"]["counters"]
        assert counters["succache.hit"] == 2
        assert counters["succache.miss"] == 1
        assert not any(name.startswith("succcache.") for name in counters)


class TestSinks:
    def test_render_trace_collapses_sibling_runs(self):
        telemetry.enable()
        with telemetry.span("explore"):
            for round_number in range(TRACE_SIBLING_LIMIT + 4):
                with telemetry.span("shard_round", round=round_number):
                    pass
        text = render_trace()
        assert text.count("shard_round ") == TRACE_SIBLING_LIMIT
        assert "... and 4 more 'shard_round' spans" in text

    def test_render_trace_empty(self):
        assert "(no spans recorded)" in render_trace()

    def test_render_trace_accepts_a_snapshot_span_list(self):
        telemetry.enable()
        with telemetry.span("explore", system="P2"):
            pass
        roots = telemetry.snapshot()["spans"]
        telemetry.reset()  # render from the exported dicts, not live state
        text = render_trace(roots)
        assert "explore" in text
        assert "system=P2" in text

    def test_print_trace_stream_override(self):
        telemetry.enable()
        with telemetry.span("verify"):
            pass
        stream = io.StringIO()
        telemetry.print_trace(stream=stream)
        assert "verify" in stream.getvalue()

    def test_print_trace_empty_tree_to_custom_stream(self):
        stream = io.StringIO()
        telemetry.print_trace(stream=stream)
        assert "(no spans recorded)" in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_write_metrics_round_trips(self, tmp_path):
        telemetry.enable()
        telemetry.count("explore.states", 3)
        with telemetry.span("explore"):
            pass
        out = tmp_path / "metrics.json"
        telemetry.write_metrics(out)
        payload = json.loads(out.read_text())
        validate_snapshot(payload)
        assert payload["version"] == SNAPSHOT_VERSION
        assert payload["metrics"]["counters"]["explore.states"] == 3
        assert payload["spans"][0]["name"] == "explore"

    def test_progress_line_paints_and_clears_on_tty(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        line = ProgressLine(stream=stream)
        line.interval = 0.0  # every stride-th call repaints
        for states in range(1, 4 * ProgressLine.stride + 1):
            line.maybe(states, queued=5, depth=2)
        text = stream.getvalue()
        assert "explore:" in text
        assert "states/s" in text
        assert "\r" in text  # in-place redraws
        line.close()
        assert stream.getvalue().endswith("\r")

    def test_progress_line_plain_mode_on_non_tty(self):
        # A captured stream (StringIO.isatty() is False) must get plain
        # newline-delimited updates — no \r control characters, and no
        # clearing on close.
        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line.interval = 0.0
        for states in range(1, 4 * ProgressLine.stride + 1):
            line.maybe(states, queued=5, depth=2)
        line.close()
        text = stream.getvalue()
        assert "explore:" in text
        assert "\r" not in text
        lines = text.splitlines()
        assert len(lines) >= 2  # one complete record per update
        assert all(entry.startswith("explore:") for entry in lines)
        assert text.endswith("\n")

    def test_engine_counters_is_the_shared_snapshot(self):
        # The CLI footer and the run.end event both read this one helper;
        # its keys are a contract.
        telemetry.enable()
        telemetry.count("succache.hit", 3)
        telemetry.count("graphstore.miss", 1)
        telemetry.count("graphstore.incremental.reused_states", 7)
        telemetry.gauge("stream.states_at_verdict", 42)
        with telemetry.span("explore"):
            pass
        counters = telemetry.engine_counters()
        assert counters["succ_hits"] == 3
        assert counters["succ_misses"] == 0
        assert counters["store_hits"] == 0
        assert counters["store_misses"] == 1
        assert counters["incremental_reused"] == 7
        assert counters["states_at_verdict"] == 42
        assert "explore" in counters["phases"]

    def test_engine_counters_when_nothing_ran(self):
        counters = telemetry.engine_counters()
        assert counters["phases"] == {}
        assert counters["states_at_verdict"] is None

    def test_progress_line_stride_skips_clock(self):
        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        for states in range(ProgressLine.stride - 1):
            line.maybe(states, queued=0, depth=0)
        assert stream.getvalue() == ""  # below the stride: no writes at all
        line.close()
        assert stream.getvalue() == ""  # nothing drawn, nothing to clear


def _fake_worker_task(n):
    telemetry.count("test.calls")
    return n * 2
