"""Telemetry tests share one process-wide registry — isolate every test."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts disabled and empty, and leaves nothing behind."""
    telemetry.disable()
    telemetry.reset()
    telemetry.reset_events()
    yield
    telemetry.disable()
    telemetry.reset()
    telemetry.reset_events()
