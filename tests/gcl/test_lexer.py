"""Tests for the GCL lexer."""

import pytest

from repro.gcl.errors import LexError
from repro.gcl.lexer import tokenize
from repro.gcl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestTokens:
    def test_empty_input_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_keywords_vs_identifiers(self):
        assert kinds("do od skip foo") == [
            TokenKind.DO,
            TokenKind.OD,
            TokenKind.SKIP,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_two_char_operators(self):
        assert kinds("-> := [] == != <= >= ..") == [
            TokenKind.ARROW,
            TokenKind.ASSIGN,
            TokenKind.BOX,
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.DOTDOT,
            TokenKind.EOF,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * ( ) , ; : < >") == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.SEMI,
            TokenKind.COLON,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.EOF,
        ]

    def test_number_text(self):
        tokens = tokenize("117")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].text == "117"

    def test_identifier_with_digits_and_underscore(self):
        tokens = tokenize("z_1a")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "z_1a"

    def test_comments_skipped(self):
        assert kinds("x # a comment -> od\ny") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_locations(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
        assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x @ y")

    def test_number_glued_to_letter(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as info:
            tokenize("ok\n   @")
        assert "line 2" in str(info.value)
