"""Differential tests: compiled closures vs the tree-walking interpreter.

The compiled path (:mod:`repro.gcl.compile`) must be *semantically
invisible*: every guard evaluation, every post-state set (including
order), and every error — class and message — must match the reference
interpreter (:mod:`repro.gcl.eval`) exactly.  These tests drive every
command of every GCL workload family through both engines from the same
reachable pre-states, then pin the error-path parity on small crafted
programs.
"""

import pytest

from repro.gcl import (
    EvalError,
    Program,
    compile_bool,
    compile_int,
    compile_program,
    parse_expression,
    parse_program,
)
from repro.gcl.eval import evaluate, evaluate_bool, execute
from repro.gcl.state import ProgramState
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    distractor_loop,
    modulus_chain,
    p1,
    p2,
    p3,
    p3_bounded,
    p4,
    p4_bounded,
)

# Every GCL-program workload family, with exploration bounds for the
# unbounded ones (p3/p4 diverge without a state cap).
WORKLOADS = [
    ("p1", lambda: p1(6), None),
    ("p2", lambda: p2(6), None),
    ("p3", lambda: p3(), 150),
    ("p3_bounded", lambda: p3_bounded(), None),
    ("p4", lambda: p4(), 150),
    ("p4_bounded", lambda: p4_bounded(), None),
    ("counter_grid", lambda: counter_grid(4, 4), None),
    ("distractor_loop", lambda: distractor_loop(3, 2), None),
    ("modulus_chain", lambda: modulus_chain(2), None),
]


@pytest.mark.parametrize(
    "factory,max_states",
    [(factory, bound) for _, factory, bound in WORKLOADS],
    ids=[name for name, _, _ in WORKLOADS],
)
def test_every_command_agrees_with_interpreter(factory, max_states):
    """Each command of each family: identical guards AND identical
    post-state lists (same states, same order) from every reachable state."""
    ast = factory().ast
    interpreted = Program(ast, compiled=False)
    compiled = compile_program(ast)
    graph = explore(interpreted, max_states=max_states)
    assert len(graph) > 0
    for state in graph.states:
        for command in ast.commands:
            holds = evaluate_bool(command.guard, state)
            assert compiled.by_label[command.label].guard(state.values) is holds
            if holds:
                expected = execute(command.body, state)
                actual = compiled.execute_command(command.label, state)
                assert actual == expected, (
                    f"{command.label} at {state}: "
                    f"compiled {actual} != interpreted {expected}"
                )


@pytest.mark.parametrize(
    "factory,max_states",
    [(factory, bound) for _, factory, bound in WORKLOADS],
    ids=[name for name, _, _ in WORKLOADS],
)
def test_exploration_is_bit_identical(factory, max_states):
    """Whole-graph parity: interpreted and compiled exploration produce the
    same state order, transitions, enabled sets and frontier."""
    ast = factory().ast
    graphs = [
        explore(Program(ast, compiled=flag), max_states=max_states)
        for flag in (False, True)
    ]
    interpreted, compiled = graphs
    assert list(compiled.states) == list(interpreted.states)
    assert list(compiled.transitions) == list(interpreted.transitions)
    assert [
        compiled.enabled_at(i) for i in range(len(compiled))
    ] == [interpreted.enabled_at(i) for i in range(len(interpreted))]
    assert compiled.frontier == interpreted.frontier


# ---------------------------------------------------------------------------
# Error parity — class and message must match the interpreter exactly
# ---------------------------------------------------------------------------


def _program_pair(body, variables="x := 0, y := 0"):
    source = f"program T var {variables} do a: true -> {body} od"
    return (
        parse_program(source, compiled=False),
        parse_program(source, compiled=True),
    )


def _outcome(program, state):
    try:
        return ("ok", tuple(program.post(state)))
    except (EvalError, KeyError) as error:
        return (type(error).__name__, str(error))


def _assert_same_outcome(body, variables="x := 0, y := 0", **valuation):
    interpreted, compiled = _program_pair(body, variables)
    results = [
        _outcome(program, program.state(**valuation))
        for program in (interpreted, compiled)
    ]
    assert results[0] == results[1], (
        f"{body!r}: interpreted {results[0]} != compiled {results[1]}"
    )
    return results[0]


class TestErrorParity:
    def test_division_by_zero(self):
        kind, message = _assert_same_outcome("x := x div y", x=1, y=0)
        assert (kind, message) == ("EvalError", "division by zero")

    def test_modulo_by_zero(self):
        kind, message = _assert_same_outcome("x := x mod y", x=1, y=0)
        assert (kind, message) == ("EvalError", "modulo by zero")

    def test_empty_choose_range(self):
        kind, message = _assert_same_outcome(
            "choose x in y .. 0 - 1", x=0, y=0
        )
        assert kind == "EvalError"
        assert "empty range" in message

    def test_unknown_variable_in_expression(self):
        kind, message = _assert_same_outcome("x := nope + 1", x=0, y=0)
        assert (kind, message) == ("EvalError", "unknown variable 'nope'")

    def test_unknown_assignment_target(self):
        kind, message = _assert_same_outcome("q := x + 1", x=0, y=0)
        assert kind == "KeyError"
        assert "q" in message

    def test_integer_where_boolean_expected(self):
        kind, message = _assert_same_outcome(
            "if x + 1 then skip else skip fi", x=0, y=0
        )
        assert kind == "EvalError"
        assert message.startswith("expected a boolean")

    def test_boolean_where_integer_expected(self):
        kind, message = _assert_same_outcome("x := (x == y)", x=0, y=0)
        assert kind == "EvalError"
        assert message.startswith("expected an integer")

    def test_unknown_builtin(self):
        # The parser rejects unknown function names, so this error is only
        # reachable through a hand-built AST; both engines must still agree
        # (and must evaluate the arguments before rejecting the call, so an
        # argument error wins over the unknown-builtin error).
        from repro.gcl import Call, IntLiteral

        expr = Call(function="frobnicate", args=(IntLiteral(value=1),))
        state = ProgramState.from_dict(dict(x=0))
        slots = {"x": 0}
        with pytest.raises(EvalError, match="unknown builtin 'frobnicate'"):
            evaluate(expr, state)
        with pytest.raises(EvalError, match="unknown builtin 'frobnicate'"):
            compile_int(expr, slots)(state.values)

        bad_arg = Call(
            function="frobnicate", args=(parse_expression("1 div 0"),)
        )
        with pytest.raises(EvalError, match="division by zero"):
            evaluate(bad_arg, state)
        with pytest.raises(EvalError, match="division by zero"):
            compile_int(bad_arg, slots)(state.values)

    def test_guard_errors_surface_identically(self):
        source = (
            "program T var x := 1, y := 0 "
            "do a: x div y == 0 -> skip od"
        )
        for compiled in (False, True):
            program = parse_program(source, compiled=compiled)
            state = program.state(x=1, y=0)
            with pytest.raises(EvalError, match="division by zero"):
                program.post(state)


class TestShortCircuit:
    """Short-circuiting is semantics, not an optimisation: the right-hand
    side of ``and``/``or`` may be a division that must never run."""

    CASES = [
        ("y != 0 and x div y > 0", dict(x=4, y=0), False),
        ("y != 0 and x div y > 0", dict(x=4, y=2), True),
        ("y == 0 or x div y > 0", dict(x=4, y=0), True),
        ("y == 0 or x div y > 0", dict(x=4, y=2), True),
    ]

    @pytest.mark.parametrize("source,valuation,expected", CASES)
    def test_compiled_matches_interpreter(self, source, valuation, expected):
        expr = parse_expression(source)
        state = ProgramState.from_dict(valuation)
        slots = {name: i for i, name in enumerate(state.names)}
        compiled = compile_bool(expr, slots)
        assert evaluate_bool(expr, state) is expected
        assert compiled(state.values) is expected


class TestExpressionCompilation:
    """Spot checks of the closure layer itself (no Program wrapping)."""

    CASES = [
        ("7 div 2", {}, 3),
        ("-7 div 2", {}, -4),  # mathematical floor division
        ("7 mod 2", {}, 1),
        ("z mod 117", dict(z=-1), 116),
        ("z mod 117", dict(z=-117), 0),
        ("1 + 2 * 3", {}, 7),
        ("-x", dict(x=4), -4),
        ("min(3, 1, 2)", {}, 1),
        ("max(y - x, 0)", dict(x=5, y=2), 0),
        ("abs(0 - 9)", {}, 9),
    ]

    @pytest.mark.parametrize("source,valuation,expected", CASES)
    def test_compiled_int_matches_interpreter(
        self, source, valuation, expected
    ):
        expr = parse_expression(source)
        state = ProgramState.from_dict(valuation)
        slots = {name: i for i, name in enumerate(state.names)}
        assert evaluate(expr, state) == expected
        assert compile_int(expr, slots)(state.values) == expected

    def test_nondeterministic_bodies_dedup_in_first_seen_order(self):
        interpreted, compiled_prog = _program_pair(
            "choose x in 1 .. 3; x := x mod 2", variables="x := 0"
        )
        for program in (interpreted, compiled_prog):
            state = program.state(x=0)
            posts = [target for _, target in program.post(state)]
            assert [p["x"] for p in posts] == [1, 0]


# ---------------------------------------------------------------------------
# Batched guard kernels (DESIGN §6f) — one guard over many states per call
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory,max_states",
    [(factory, bound) for _, factory, bound in WORKLOADS],
    ids=[name for name, _, _ in WORKLOADS],
)
def test_expand_batch_matches_state_major_reference(factory, max_states):
    """``expand_batch`` over every reachable state of every family must
    return exactly what per-state ``expand_values`` returns — same masks,
    same ``(command, post)`` pairs, same order."""
    ast = factory().ast
    compiled = compile_program(ast)
    graph = explore(Program(ast), max_states=max_states)
    rows = [state.values for state in graph.states]
    batched = compiled.expand_batch(rows)
    reference = [compiled.expand_values(values) for values in rows]
    assert batched == reference


def test_guard_batch_entry_point_matches_closure():
    """Every compiled command's vectorized guard agrees row-for-row with
    its scalar closure (including short-circuit and div/mod edge shapes)."""
    program = parse_program(
        """
        program G
        var x := 0, y := 3
        do
             a: x < y and y div 2 == 1 -> x := x + 1
          [] b: x == y or not (x < y) -> y := y - 1
          [] c: max(x, y) > 2 -> skip
        od
        """
    )
    compiled = compile_program(program.ast)
    graph = explore(program, max_states=200)
    rows = [state.values for state in graph.states]
    for command in compiled.commands:
        assert command.guard_batch(rows) == [
            command.guard(values) for values in rows
        ]


def test_expand_batch_error_parity():
    """A guard that raises mid-batch must surface the *serial* error —
    the whole batch falls back to state-major order so the first failing
    state (not an arbitrary batch position) reports, with an identical
    class and message."""
    program = parse_program(
        "program E var x := 2, y := 1 "
        "do a: x div y == 2 -> y := y - 1 od"
    )
    compiled = compile_program(program.ast)
    good = program.state(x=2, y=1).values
    bad = program.state(x=2, y=0).values
    try:
        compiled.expand_values(bad)
    except EvalError as error:
        serial_message = str(error)
    else:  # pragma: no cover - guard must raise
        pytest.fail("expected the division by zero to raise")
    with pytest.raises(EvalError) as batch_error:
        compiled.expand_batch([good, bad, good])
    assert str(batch_error.value) == serial_message


def test_unsupported_guard_falls_back_to_closure():
    """``compile_guard_batch`` on an expression shape the emitter does not
    know must degrade to the scalar closure, not crash or misevaluate."""
    from repro.gcl.compile import compile_guard_batch

    class Alien:  # not a GCL AST node
        pass

    calls = []

    def guard(values):
        calls.append(values)
        return values[0] > 0

    batch = compile_guard_batch(Alien(), {"x": 0}, guard)
    assert batch([(1,), (0,), (2,)]) == [True, False, True]
    assert calls == [(1,), (0,), (2,)]


class TestBodyBatchKernels:
    """The fused single-post body kernels behind ``expand_batch``."""

    def _command(self, body, variables="x := 0, y := 0"):
        program = parse_program(
            f"program T var {variables} do a: true -> {body} od",
            compiled=True,
        )
        return program._compiled.commands[0], program

    def test_assign_body_fuses_and_matches_execute(self):
        command, program = self._command("x, y := x + y, x - y")
        assert command.body_batch_single is not None
        rows = [program.state(x=x, y=y).values for x in range(4) for y in range(4)]
        fused = command.body_batch_single(rows)
        assert fused == [command.execute(row)[0] for row in rows]

    def test_if_over_assign_fuses(self):
        command, program = self._command(
            "if x < y then x := x + 1 else y := y - 1 fi"
        )
        assert command.body_batch_single is not None
        rows = [program.state(x=x, y=y).values for x, y in [(0, 3), (3, 0), (2, 2)]]
        assert command.body_batch_single(rows) == [
            command.execute(row)[0] for row in rows
        ]

    def test_skip_and_single_variable_width(self):
        command, program = self._command("skip", variables="x := 0")
        assert command.body_batch_single is not None
        rows = [(0,), (5,), (-3,)]
        assert command.body_batch_single(rows) == list(rows)
        command, _ = self._command("x := x * 2", variables="x := 0")
        assert command.body_batch_single(rows) == [(0,), (10,), (-6,)]

    def test_choose_body_does_not_fuse(self):
        command, _ = self._command("choose x in 0..y")
        assert command.body_batch_single is None

    def test_seq_body_does_not_fuse(self):
        command, _ = self._command("x := x + 1; y := y + x")
        assert command.body_batch_single is None
