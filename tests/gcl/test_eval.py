"""Tests for expression evaluation and atomic statement execution."""

import pytest

from repro.gcl.errors import EvalError
from repro.gcl.eval import evaluate, evaluate_bool, evaluate_int, execute
from repro.gcl.parser import parse_expression, parse_program_ast
from repro.gcl.state import ProgramState


def state(**values):
    return ProgramState.from_dict(values)


def ev(source, **values):
    return evaluate(parse_expression(source), state(**values))


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 3 - 2") == 5
        assert ev("-x", x=4) == -4

    def test_div_mod_floor_semantics(self):
        assert ev("7 div 2") == 3
        assert ev("-7 div 2") == -4
        assert ev("7 mod 2") == 1

    def test_mod_of_negative_stays_in_range(self):
        # The P3' annotation needs z mod 117 ∈ {0..116} even for z < 0.
        assert ev("z mod 117", z=-1) == 116
        assert ev("z mod 117", z=-117) == 0

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            ev("1 div 0")
        with pytest.raises(EvalError):
            ev("1 mod 0")

    def test_comparisons(self):
        assert ev("x < y", x=1, y=2) is True
        assert ev("x >= y", x=1, y=2) is False
        assert ev("x == y", x=2, y=2) is True
        assert ev("x != y", x=2, y=2) is False

    def test_connectives_and_short_circuit(self):
        assert ev("true or 1 div 0 == 0") is True
        assert ev("false and 1 div 0 == 0") is False
        assert ev("not true") is False

    def test_builtins(self):
        assert ev("max(y - x, 0)", x=5, y=2) == 0
        assert ev("min(3, 1, 2)") == 1
        assert ev("abs(0 - 9)") == 9

    def test_unknown_variable(self):
        with pytest.raises(EvalError):
            ev("nope")

    def test_type_errors(self):
        with pytest.raises(EvalError):
            ev("1 + true")
        with pytest.raises(EvalError):
            ev("not 1")
        with pytest.raises(EvalError):
            evaluate_bool(parse_expression("1 + 1"), state())
        with pytest.raises(EvalError):
            evaluate_int(parse_expression("true"), state())


def body(source):
    program = parse_program_ast(f"program T do a: true -> {source} od")
    return program.commands[0].body


class TestStatementExecution:
    def test_skip_returns_same_state(self):
        s = state(x=1)
        assert execute(body("skip"), s) == [s]

    def test_assignment(self):
        results = execute(body("x := x + 1"), state(x=1))
        assert results == [state(x=2)]

    def test_parallel_assignment_is_simultaneous(self):
        results = execute(body("x, y := y, x"), state(x=1, y=2))
        assert results == [state(x=2, y=1)]

    def test_sequence_threads_state(self):
        results = execute(body("x := x + 1; x := x * 2"), state(x=1))
        assert results == [state(x=4)]

    def test_choose_enumerates_range(self):
        results = execute(body("choose x in 1 .. 3"), state(x=0))
        assert sorted(r["x"] for r in results) == [1, 2, 3]

    def test_choose_empty_range_raises(self):
        with pytest.raises(EvalError):
            execute(body("choose x in 3 .. 1"), state(x=0))

    def test_choose_bounds_use_pre_state(self):
        results = execute(body("choose x in 0 .. y"), state(x=5, y=2))
        assert sorted(r["x"] for r in results) == [0, 1, 2]

    def test_if_branches(self):
        stmt = body("if x < 2 then x := 9 else x := 0 fi")
        assert execute(stmt, state(x=1)) == [state(x=9)]
        assert execute(stmt, state(x=5)) == [state(x=0)]

    def test_duplicate_results_deduplicated(self):
        stmt = body("choose x in 1 .. 2; x := 0")
        assert execute(stmt, state(x=7)) == [state(x=0)]

    def test_assignment_to_unknown_variable(self):
        with pytest.raises(KeyError):
            execute(body("q := 1"), state(x=0))
