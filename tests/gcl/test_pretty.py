"""Round-trip tests for the pretty-printer (including a hypothesis AST
generator: parse(render(ast)) == ast)."""

from hypothesis import given, strategies as st

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    BoolLiteral,
    Call,
    Choose,
    GuardedCommand,
    If,
    IntLiteral,
    ProgramAst,
    Seq,
    Skip,
    Unary,
    UnaryOp,
    VarDecl,
    VarRef,
)
from repro.gcl.parser import parse_expression, parse_program_ast
from repro.gcl.pretty import render_expr, render_program, render_stmt

names = st.sampled_from(["x", "y", "z"])

int_exprs = st.recursive(
    st.one_of(
        st.integers(min_value=0, max_value=99).map(IntLiteral),
        names.map(VarRef),
    ),
    lambda children: st.one_of(
        st.tuples(
            st.sampled_from(
                [BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD]
            ),
            children,
            children,
        ).map(lambda t: Binary(op=t[0], left=t[1], right=t[2])),
        children.map(lambda e: Unary(op=UnaryOp.NEG, operand=e)),
        st.tuples(children, children).map(
            lambda t: Call(function="max", args=t)
        ),
        children.map(lambda e: Call(function="abs", args=(e,))),
    ),
    max_leaves=8,
)

bool_exprs = st.recursive(
    st.one_of(
        st.booleans().map(BoolLiteral),
        st.tuples(
            st.sampled_from(
                [
                    BinaryOp.EQ,
                    BinaryOp.NE,
                    BinaryOp.LT,
                    BinaryOp.LE,
                    BinaryOp.GT,
                    BinaryOp.GE,
                ]
            ),
            int_exprs,
            int_exprs,
        ).map(lambda t: Binary(op=t[0], left=t[1], right=t[2])),
    ),
    lambda children: st.one_of(
        st.tuples(
            st.sampled_from([BinaryOp.AND, BinaryOp.OR]), children, children
        ).map(lambda t: Binary(op=t[0], left=t[1], right=t[2])),
        children.map(lambda e: Unary(op=UnaryOp.NOT, operand=e)),
    ),
    max_leaves=6,
)

statements = st.recursive(
    st.one_of(
        st.just(Skip()),
        st.tuples(names, int_exprs).map(
            lambda t: Assign(targets=(t[0],), values=(t[1],))
        ),
        st.tuples(int_exprs, int_exprs).map(
            lambda t: Choose(target="x", low=t[0], high=t[1])
        ),
    ),
    lambda children: st.one_of(
        st.tuples(bool_exprs, children, children).map(
            lambda t: If(condition=t[0], then_branch=t[1], else_branch=t[2])
        ),
        st.lists(children, min_size=2, max_size=3).map(
            lambda parts: Seq(statements=tuple(parts))
        ),
    ),
    max_leaves=5,
)


def _flatten_seq(stmt):
    """Normalise nested Seq nodes: the printer flattens a; (b; c) to
    a; b; c, so compare modulo association."""
    if isinstance(stmt, Seq):
        flat = []
        for part in stmt.statements:
            inner = _flatten_seq(part)
            if isinstance(inner, Seq):
                flat.extend(inner.statements)
            else:
                flat.append(inner)
        return Seq(statements=tuple(flat))
    if isinstance(stmt, If):
        return If(
            condition=stmt.condition,
            then_branch=_flatten_seq(stmt.then_branch),
            else_branch=_flatten_seq(stmt.else_branch),
        )
    return stmt


class TestExpressionRoundTrip:
    @given(int_exprs)
    def test_int_expressions(self, expr):
        assert parse_expression(render_expr(expr)) == expr

    @given(bool_exprs)
    def test_bool_expressions(self, expr):
        assert parse_expression(render_expr(expr)) == expr

    def test_minimal_parentheses(self):
        expr = parse_expression("1 + 2 * 3")
        assert render_expr(expr) == "1 + 2 * 3"

    def test_needed_parentheses_kept(self):
        expr = parse_expression("(1 + 2) * 3")
        assert render_expr(expr) == "(1 + 2) * 3"


class TestStatementRoundTrip:
    @given(statements)
    def test_statements(self, stmt):
        source = f"program T do a: true -> {render_stmt(stmt)} od"
        parsed = parse_program_ast(source).commands[0].body
        assert _flatten_seq(parsed) == _flatten_seq(stmt)


class TestProgramRoundTrip:
    def test_p2_round_trips(self):
        source = """
        program P2
        var x := 0, y := 10
        do
             la: x < y -> x := x + 1
          [] lb: x < y -> skip
        od
        """
        ast = parse_program_ast(source)
        assert parse_program_ast(render_program(ast)) == ast

    def test_range_declaration_round_trips(self):
        ast = parse_program_ast(
            "program R var x in 0 .. 3 do a: x > 0 -> x := x - 1 od"
        )
        assert parse_program_ast(render_program(ast)) == ast

    @given(st.lists(statements, min_size=1, max_size=3), bool_exprs)
    def test_generated_programs_round_trip(self, bodies, guard):
        commands = tuple(
            GuardedCommand(label=f"c{i}", guard=guard, body=body)
            for i, body in enumerate(bodies)
        )
        ast = ProgramAst(
            name="G",
            declarations=(
                VarDecl("x", IntLiteral(0), IntLiteral(0)),
                VarDecl("y", IntLiteral(1), IntLiteral(2)),
                VarDecl("z", IntLiteral(0), IntLiteral(0)),
            ),
            commands=commands,
        )
        reparsed = parse_program_ast(render_program(ast))
        assert reparsed.name == ast.name
        assert reparsed.variables() == ast.variables()
        assert len(reparsed.commands) == len(ast.commands)
        for a, b in zip(reparsed.commands, ast.commands):
            assert a.guard == b.guard
            assert _flatten_seq(a.body) == _flatten_seq(b.body)
