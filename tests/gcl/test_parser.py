"""Tests for the GCL parser."""

import pytest

from repro.gcl.ast import (
    Assign,
    Binary,
    BinaryOp,
    Choose,
    If,
    IntLiteral,
    Seq,
    Skip,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.gcl.errors import ParseError
from repro.gcl.parser import parse_expression, parse_program_ast

P2_SOURCE = """
program P2
var x := 0, y := 10
do
     la: x < y -> x := x + 1
  [] lb: x < y -> skip
od
"""


class TestPrograms:
    def test_p2_structure(self):
        ast = parse_program_ast(P2_SOURCE)
        assert ast.name == "P2"
        assert ast.variables() == ("x", "y")
        assert ast.command_labels() == ("la", "lb")

    def test_box_separator_optional(self):
        source = """
        program Q
        do
          a: true -> skip
          b: true -> skip
        od
        """
        assert parse_program_ast(source).command_labels() == ("a", "b")

    def test_range_declaration(self):
        ast = parse_program_ast(
            "program R var x in 0 .. 3 do a: x > 0 -> x := x - 1 od"
        )
        decl = ast.declarations[0]
        assert decl.init_low != decl.init_high

    def test_multiple_var_keywords(self):
        ast = parse_program_ast(
            "program R var x := 1 var y := 2 do a: true -> skip od"
        )
        assert ast.variables() == ("x", "y")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            parse_program_ast(
                "program D do a: true -> skip [] a: true -> skip od"
            )

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            parse_program_ast(
                "program D var x := 0, x := 1 do a: true -> skip od"
            )

    def test_empty_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_program_ast("program E do od")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program_ast(P2_SOURCE + " extra")


class TestStatements:
    def run(self, body):
        source = f"program S do a: true -> {body} od"
        return parse_program_ast(source).commands[0].body

    def test_skip(self):
        assert isinstance(self.run("skip"), Skip)

    def test_assignment(self):
        stmt = self.run("x := 1")
        assert isinstance(stmt, Assign)
        assert stmt.targets == ("x",)

    def test_parallel_assignment(self):
        stmt = self.run("x, y := y, x")
        assert stmt.targets == ("x", "y")
        assert isinstance(stmt.values[0], VarRef)

    def test_parallel_arity_mismatch(self):
        with pytest.raises(ParseError):
            self.run("x, y := 1")

    def test_sequence(self):
        stmt = self.run("x := 1; y := 2; skip")
        assert isinstance(stmt, Seq)
        assert len(stmt.statements) == 3

    def test_choose(self):
        stmt = self.run("choose x in 0 .. 5")
        assert isinstance(stmt, Choose)
        assert stmt.target == "x"

    def test_if_with_else(self):
        stmt = self.run("if x < 1 then x := 1 else skip fi")
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_branch, Skip)

    def test_if_without_else_defaults_to_skip(self):
        stmt = self.run("if x < 1 then x := 1 fi")
        assert isinstance(stmt.else_branch, Skip)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Binary)
        assert expr.op is BinaryOp.ADD
        assert isinstance(expr.right, Binary)
        assert expr.right.op is BinaryOp.MUL

    def test_precedence_comparison_over_and(self):
        expr = parse_expression("x < y and y < z")
        assert expr.op is BinaryOp.AND
        assert expr.left.op is BinaryOp.LT

    def test_precedence_and_over_or(self):
        expr = parse_expression("a or b and c")
        assert expr.op is BinaryOp.OR
        assert expr.right.op is BinaryOp.AND

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op is BinaryOp.MUL
        assert expr.left.op is BinaryOp.ADD

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op is BinaryOp.ADD
        assert isinstance(expr.left, Unary)
        assert expr.left.op is UnaryOp.NEG

    def test_not(self):
        expr = parse_expression("not x < y")
        # 'not' binds tighter than comparison operands chain: not applies
        # to the factor x, so this parses as (not x) < y — reject at eval
        # time; the paper-style guards always parenthesise.
        assert isinstance(expr, Binary)

    def test_builtin_calls(self):
        expr = parse_expression("max(y - x, 0)")
        assert expr.function == "max"
        assert len(expr.args) == 2

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("foo(1)")

    def test_abs_arity_checked(self):
        with pytest.raises(ParseError):
            parse_expression("abs(1, 2)")

    def test_mod_div_keywords(self):
        expr = parse_expression("z mod 117")
        assert expr.op is BinaryOp.MOD
        expr = parse_expression("z div 2")
        assert expr.op is BinaryOp.DIV

    def test_left_associativity(self):
        expr = parse_expression("10 - 3 - 2")
        assert expr.op is BinaryOp.SUB
        assert isinstance(expr.left, Binary)
        assert isinstance(expr.right, IntLiteral)

    def test_incomplete_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")

    def test_error_message_names_expectation(self):
        with pytest.raises(ParseError) as info:
            parse_expression("(1")
        assert "')'" in str(info.value)
