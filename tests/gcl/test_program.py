"""Tests for program semantics (Program as a transition system)."""

import pytest

from repro.gcl.errors import EvalError
from repro.gcl.program import parse_program

P3 = """
program P3
var x := 0, y := 2, z := 5
do
     la: x < y and z mod 3 == 0 -> x := x + 1
  [] lb: x < y -> z := z - 1
od
"""


class TestProgramSemantics:
    def test_commands_in_order(self):
        assert parse_program(P3).commands() == ("la", "lb")

    def test_single_initial_state(self):
        program = parse_program(P3)
        (initial,) = list(program.initial_states())
        assert initial["z"] == 5

    def test_range_initial_states(self):
        program = parse_program(
            "program R var x in 0 .. 2 do a: x > 0 -> x := x - 1 od"
        )
        values = sorted(s["x"] for s in program.initial_states())
        assert values == [0, 1, 2]

    def test_later_range_may_reference_earlier_var(self):
        program = parse_program(
            "program R var n := 2, x in 0 .. n do a: x > 0 -> x := x - 1 od"
        )
        assert len(list(program.initial_states())) == 3

    def test_empty_initial_range_raises(self):
        program = parse_program(
            "program R var x in 2 .. 1 do a: x > 0 -> x := x - 1 od"
        )
        with pytest.raises(EvalError):
            list(program.initial_states())

    def test_enabled_respects_guards(self):
        program = parse_program(P3)
        s = program.state(x=0, y=2, z=5)
        assert program.enabled(s) == frozenset({"lb"})
        s0 = program.state(x=0, y=2, z=3)
        assert program.enabled(s0) == frozenset({"la", "lb"})

    def test_terminal_state(self):
        program = parse_program(P3)
        s = program.state(x=2, y=2, z=0)
        assert program.is_terminal(s)

    def test_post_executes_enabled_only(self):
        program = parse_program(P3)
        s = program.state(x=0, y=2, z=4)
        posts = dict(program.post(s))
        assert set(posts) == {"lb"}
        assert posts["lb"]["z"] == 3

    def test_nondeterministic_command_multiple_successors(self):
        program = parse_program(
            "program N var x := 0 do a: x == 0 -> choose x in 1 .. 3 od"
        )
        (initial,) = list(program.initial_states())
        targets = sorted(t["x"] for _, t in program.post(initial))
        assert targets == [1, 2, 3]

    def test_state_constructor_validates_names(self):
        program = parse_program(P3)
        with pytest.raises(ValueError):
            program.state(x=0, y=2)  # missing z
        with pytest.raises(ValueError):
            program.state(x=0, y=2, z=0, w=1)

    def test_command_lookup(self):
        program = parse_program(P3)
        assert program.command("la").label == "la"
        with pytest.raises(KeyError):
            program.command("nope")

    def test_guard_holds(self):
        program = parse_program(P3)
        assert program.guard_holds("lb", program.state(x=0, y=2, z=1))
        assert not program.guard_holds("la", program.state(x=0, y=2, z=1))
