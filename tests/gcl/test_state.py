"""Tests for immutable program states."""

import pytest

from repro.gcl.state import ProgramState


class TestProgramState:
    def test_mapping_interface(self):
        s = ProgramState(("x", "y"), (1, 2))
        assert s["x"] == 1
        assert dict(s) == {"x": 1, "y": 2}
        assert len(s) == 2
        assert "x" in s

    def test_missing_name(self):
        s = ProgramState(("x",), (1,))
        with pytest.raises(KeyError):
            s["z"]

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            ProgramState(("x", "y"), (1,))

    def test_equality_and_hash(self):
        a = ProgramState(("x",), (1,))
        b = ProgramState(("x",), (1,))
        c = ProgramState(("x",), (2,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_updated_is_functional(self):
        a = ProgramState(("x", "y"), (1, 2))
        b = a.updated({"x": 5})
        assert b["x"] == 5 and b["y"] == 2
        assert a["x"] == 1  # original untouched

    def test_updated_rejects_unknown(self):
        a = ProgramState(("x",), (1,))
        with pytest.raises(KeyError):
            a.updated({"zz": 1})

    def test_from_dict_sorts_names(self):
        s = ProgramState.from_dict({"b": 2, "a": 1})
        assert s.names == ("a", "b")

    def test_repr_shows_bindings(self):
        assert "x=1" in repr(ProgramState(("x",), (1,)))
