"""Tests for Rabin-style measures and the §5 differences."""

from repro.measures import TERMINATION, Hypothesis, Stack, StackAssignment
from repro.rabin import check_rabin_style, classify_stack_as_rabin
from repro.completeness import synthesize_measure
from repro.ts import ExplicitSystem, explore
from repro.wf import NATURALS
from repro.workloads import p2, p2_assertion


def T(w):
    return Hypothesis(TERMINATION, w)


class TestRabinRules:
    def test_plain_descending_chain_passes(self):
        chain = ExplicitSystem(("a",), [0], [(0, "a", 1), (1, "a", 2)])
        graph = explore(chain)
        assignment = StackAssignment.from_dict(
            {0: Stack([T(2)]), 1: Stack([T(1)]), 2: Stack([T(0)])}, NATURALS
        )
        report = check_rabin_style(graph, assignment)
        assert report.ok
        assert "PASS" in report.summary()

    def test_difference_1_colour_clash_detected(self):
        # The same value 7 coloured both T and 'b' across states.
        system = ExplicitSystem(
            ("a", "b"), [0], [(0, "a", 1), (1, "b", 2)]
        )
        graph = explore(system)
        assignment = StackAssignment.from_dict(
            {
                0: Stack([T(9), Hypothesis("b", 7)]),
                1: Stack([T(7)]),
                2: Stack([T(0)]),
            },
            NATURALS,
        )
        report = check_rabin_style(graph, assignment)
        assert report.colour_clashes
        assert not report.ok

    def test_difference_2_old_state_enabling_rejected(self):
        # 'b' is enabled in the OLD state only; stack assertions accept
        # activity via "enabled in p or p'", Rabin measures do not.
        system = ExplicitSystem(
            ("a", "b"),
            [0],
            [(0, "a", 2), (0, "b", 1), (2, "a", 3)],
        )
        graph = explore(system)
        # On 0 --a--> 2 keep T constant, rely on b's enabledness at 0.
        assignment = StackAssignment.from_dict(
            {
                0: Stack([T(5), Hypothesis("b")]),
                2: Stack([T(5), Hypothesis("b")]),
                1: Stack([T(0)]),
                3: Stack([T(1)]),
            },
            NATURALS,
        )
        from repro.measures import check_measure

        stack_result = check_measure(graph, assignment)
        assert stack_result.ok  # fine as a stack measure
        rabin_result = check_rabin_style(graph, assignment)
        assert not rabin_result.ok  # difference 2 bites

    def test_difference_3_determined_level_must_be_active(self):
        # Level 0 changes (so it is the determined active level) but does
        # not decrease; a stack checker could instead pick level 1.
        system = ExplicitSystem(
            ("a", "b"), [0], [(0, "a", 1), (1, "b", 1), (1, "a", 2)]
        )
        graph = explore(system)
        assignment = StackAssignment.from_dict(
            {
                0: Stack([T(1), Hypothesis("a", 5)]),
                1: Stack([T(1), Hypothesis("a", 4)]),
                2: Stack([T(0)]),
            },
            NATURALS,
        )
        report = check_rabin_style(graph, assignment)
        # 1 --b--> 1: nothing changes and 'a' is enabled in the new state:
        # determined level 1, active by enabledness — that one is fine.
        # 0 --a--> 1: determined level is 1 ('a' measure changes first...),
        # but (V_NonI) forbids it since 'a' is executed.
        assert not report.ok
        assert any("at or below" in v.detail for v in report.violations)


class TestClassification:
    def test_p2_annotation_not_directly_translatable(self):
        program = p2(4)
        graph = explore(program)
        verdict = classify_stack_as_rabin(graph, p2_assertion().compile())
        # P2': the bare ℓa hypothesis never decreases a measure, and on the
        # la step T decreases — analysis depends on enabledness and choice.
        assert isinstance(verdict.translatable, bool)
        assert str(verdict)  # renders without crashing

    def test_synthesised_chain_measure_translates(self):
        chain = ExplicitSystem(("a",), [0], [(0, "a", 1), (1, "a", 2)])
        graph = explore(chain)
        synthesis = synthesize_measure(graph)
        verdict = classify_stack_as_rabin(graph, synthesis.assignment())
        assert verdict.translatable
        assert "directly translatable" in str(verdict)
