"""Tests for coloured trees (the explicit Rabin-side object)."""

from repro.measures import annotate
from repro.rabin.trees import ColouredTree, description_sizes
from repro.ts import explore
from repro.workloads import p2, p2_assertion, p4_bounded, p4_assertion


class TestColouredTree:
    def build(self, program, assertion):
        graph = explore(program)
        assignment = assertion.compile()
        return graph, assignment, ColouredTree.from_assignment(graph, assignment)

    def test_depth_matches_stack_height(self):
        _, _, tree = self.build(p2(4), p2_assertion())
        assert tree.depth() == 2

    def test_colours_are_subjects(self):
        _, _, tree = self.build(p2(4), p2_assertion())
        assert tree.colours() == frozenset({"T", "la"})

    def test_states_counted_at_leaves(self):
        graph, _, tree = self.build(p2(4), p2_assertion())
        total = 0
        work = [tree.root]
        while work:
            node = work.pop()
            total += node.states_here
            work.extend(node.children.values())
        assert total == len(graph)

    def test_vertex_count_grows_with_state_space(self):
        _, _, small = self.build(p2(4), p2_assertion())
        _, _, large = self.build(p2(40), p2_assertion())
        assert large.vertex_count() > small.vertex_count()

    def test_leaf_count_bounded_by_states(self):
        graph, _, tree = self.build(p4_bounded(2, 10, 5), p4_assertion(5))
        assert tree.leaf_count() <= len(graph)

    def test_render_lists_vertices(self):
        _, _, tree = self.build(p2(3), p2_assertion())
        rendered = tree.render()
        assert "T: " in rendered
        assert "la" in rendered

    def test_render_truncates(self):
        _, _, tree = self.build(p2(40), p2_assertion())
        rendered = tree.render(max_lines=5)
        assert rendered.endswith("...")


class TestDescriptionSizes:
    def test_tree_grows_while_assertion_is_constant(self):
        """The §5 point, quantified: the explicit tree description scales
        with the state space; the self-contained assertion does not."""
        assertion = p2_assertion()
        text = assertion.render()
        sizes = []
        for distance in (5, 50, 500):
            graph = explore(p2(distance))
            tree_size, text_size = description_sizes(
                graph, assertion.compile(), text
            )
            sizes.append((tree_size, text_size))
        tree_sizes = [t for t, _ in sizes]
        text_sizes = [a for _, a in sizes]
        assert tree_sizes[0] < tree_sizes[1] < tree_sizes[2]
        assert len(set(text_sizes)) == 1
