"""Tests for Rabin pairs conditions and the unfairness-as-Rabin encoding."""

from repro.fairness import STRONG_FAIRNESS, check_fair_termination
from repro.rabin import (
    CommandHistorySystem,
    RabinPair,
    fair_termination_rabin_condition,
)
from repro.ts import ExplicitSystem, Lasso, Path, explore
from repro.workloads import p2


class TestCommandHistorySystem:
    def test_states_carry_last_command(self):
        program = p2(3)
        annotated = CommandHistorySystem(program)
        ((base, last),) = list(annotated.initial_states())
        assert last is None
        posts = dict(annotated.post((base, None)))
        assert posts["la"][1] == "la"
        assert posts["lb"][1] == "lb"

    def test_behaviour_preserved(self):
        program = p2(3)
        base_graph = explore(program)
        annotated_graph = explore(CommandHistorySystem(program))
        # Annotation multiplies states by (at most) the in-command count but
        # must not change the fair-termination verdict.
        assert check_fair_termination(base_graph).fairly_terminates == (
            check_fair_termination(annotated_graph).fairly_terminates
        )


def annotated_lasso(program, commands, start=None):
    """Run the command sequence and loop it, over annotated states."""
    system = CommandHistorySystem(program)
    state = (
        (start, None)
        if start is not None
        else next(iter(system.initial_states()))
    )
    states = [state]
    for command in commands:
        posts = [t for c, t in system.post(states[-1]) if c == command]
        states.append(posts[0])
    cycle_states = states[1:]  # after the first pass the last-command repeats
    # Build the cycle: repeat the command sequence from states[-1].
    cycle = [states[-1]]
    for command in commands:
        posts = [t for c, t in system.post(cycle[-1]) if c == command]
        cycle.append(posts[0])
    return Lasso(
        stem=Path(tuple(states), tuple(commands)),
        cycle=Path(tuple(cycle), tuple(commands)),
    )


class TestUnfairnessAsRabinCondition:
    def test_unfair_lasso_satisfies_condition(self):
        program = p2(3)
        condition = fair_termination_rabin_condition(program)
        lasso = annotated_lasso(program, ["lb"])
        assert condition.satisfied_on_lasso(lasso)
        pair = condition.witnessing_pair(lasso)
        assert pair.name == "unfair(la)"

    def test_fair_lasso_violates_condition(self):
        # An artificial fair loop: both commands executed forever.
        system = ExplicitSystem(
            ("a", "b"),
            [0],
            [(0, "a", 1), (1, "b", 0)],
        )
        condition = fair_termination_rabin_condition(system)
        annotated = CommandHistorySystem(system)
        lasso = Lasso(
            stem=Path(((0, None), (1, "a"), (0, "b")), ("a", "b")),
            cycle=Path(((0, "b"), (1, "a"), (0, "b")), ("a", "b")),
        )
        assert not condition.satisfied_on_lasso(lasso)

    def test_agreement_with_strong_fairness_spec(self):
        """A computation satisfies the unfairness Rabin condition iff the
        strong-fairness spec calls it unfair."""
        program = p2(3)
        condition = fair_termination_rabin_condition(program)
        for commands in (["lb"], ["la", "lb"], ["lb", "lb"]):
            try:
                lasso = annotated_lasso(program, commands)
            except (IndexError, ValueError):
                continue  # not executable, or does not close into a cycle
            base_lasso = Lasso(
                stem=Path(
                    tuple(s for s, _ in lasso.stem.states),
                    lasso.stem.commands,
                ),
                cycle=Path(
                    tuple(s for s, _ in lasso.cycle.states),
                    lasso.cycle.commands,
                ),
            )
            unfair = not STRONG_FAIRNESS.is_fair(
                base_lasso, program.enabled, program.commands()
            )
            assert condition.satisfied_on_lasso(lasso) == unfair


class TestRabinPair:
    def test_pair_semantics(self):
        pair = RabinPair(
            name="demo",
            inf_target=lambda s: s == "L",
            fin_avoid=lambda s: s == "U",
        )
        assert pair.satisfied_on_cycle(["L", "x"])
        assert not pair.satisfied_on_cycle(["L", "U"])
        assert not pair.satisfied_on_cycle(["x", "y"])
