"""Tests for the explicit-scheduler (credit) transformation."""

import pytest

from repro.baselines import ScheduledSystem, explicit_scheduler_report
from repro.ts import ExplicitSystem, explore
from repro.workloads import p2, p4_bounded


def spin():
    return ExplicitSystem(("go",), [0], [(0, "go", 0)])


class TestScheduledSystem:
    def test_initial_credits_full(self):
        scheduled = ScheduledSystem(p2(3), credit=2)
        ((state, credits),) = list(scheduled.initial_states())
        assert credits == (2, 2)

    def test_credit_dynamics(self):
        program = p2(3)
        scheduled = ScheduledSystem(program, credit=2)
        initial = next(iter(scheduled.initial_states()))
        posts = dict(scheduled.post(initial))
        # Executing lb: lb resets to 2, la (enabled, not executed) loses 1.
        _, credits = posts["lb"]
        assert credits == (1, 2)
        # Executing la: la resets, lb decremented.
        _, credits = posts["la"]
        assert credits == (2, 1)

    def test_zero_credit_forces_execution(self):
        program = p2(3)
        scheduled = ScheduledSystem(program, credit=1)
        initial = next(iter(scheduled.initial_states()))
        # One lb: la's credit hits 0.
        (_, state) = next(
            (c, t) for c, t in scheduled.post(initial) if c == "lb"
        )
        assert state[1] == (0, 1)
        # Now only la is admissible.
        assert scheduled.enabled(state) == frozenset({"la"})

    def test_runs_are_k_bounded_fair(self):
        # In the scheduled system no command is ever starved for more than
        # K consecutive enabled steps: simulate along any path.
        from repro.fairness import AdversarialScheduler, simulate

        program = p2(10)
        scheduled = ScheduledSystem(program, credit=3)
        result = simulate(
            scheduled, AdversarialScheduler(avoid={"la"}), max_steps=1_000
        )
        assert result.terminated  # the scheduler forces la through
        assert result.trace.starvation_span("la") <= 3

    def test_credit_bound_validated(self):
        with pytest.raises(ValueError):
            ScheduledSystem(p2(3), credit=0)


class TestReport:
    def test_p2_scheduled_terminates(self):
        graph = explore(p2(4))
        report = explicit_scheduler_report(graph, credit=2)
        assert report.terminates
        assert report.scheduled_states > report.base_states
        assert report.blowup > 1

    def test_spin_scheduled_still_loops(self):
        graph = explore(spin())
        report = explicit_scheduler_report(graph, credit=3)
        assert not report.terminates  # a fair run exists, credits never block it

    def test_p4_bounded_scheduled_terminates(self):
        graph = explore(p4_bounded(2, 6, 3))
        report = explicit_scheduler_report(graph, credit=2)
        assert report.terminates

    def test_artificial_deadlocks_counted(self):
        # Two commands permanently enabled with credit 1: after one step
        # both the starved commands reach 0 simultaneously → deadlock.
        system = ExplicitSystem(
            ("a", "b", "c"),
            [0],
            [(0, "a", 0), (0, "b", 0), (0, "c", 0)],
        )
        graph = explore(system)
        report = explicit_scheduler_report(graph, credit=1)
        assert report.artificial_deadlocks > 0

    def test_blowup_grows_with_credit(self):
        graph = explore(p2(4))
        small = explicit_scheduler_report(graph, credit=1)
        large = explicit_scheduler_report(graph, credit=4)
        assert large.scheduled_states > small.scheduled_states

    def test_str_mentions_blowup(self):
        graph = explore(p2(3))
        report = explicit_scheduler_report(graph, credit=2)
        assert "×" in str(report)
