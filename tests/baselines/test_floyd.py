"""Tests for Floyd's method (§3.1)."""

import pytest

from repro.baselines import (
    NotTerminatingError,
    TerminationMeasure,
    check_termination_measure,
    synthesize_floyd,
)
from repro.ts import ExplicitSystem, explore
from repro.wf import ORDINALS, OMEGA, NotInDomainError, ordinal
from repro.workloads import p1, p2


class TestCheck:
    def test_p1_loop_variant_passes(self):
        graph = explore(p1(10))
        measure = TerminationMeasure(lambda s: max(s["y"] - s["x"], 0))
        result = check_termination_measure(graph, measure)
        assert result.ok
        assert result.complete
        assert "PASS" in result.summary()

    def test_p2_skip_steps_fail(self):
        graph = explore(p2(5))
        measure = TerminationMeasure(lambda s: max(s["y"] - s["x"], 0))
        result = check_termination_measure(graph, measure)
        assert not result.ok
        assert all(v.transition.command == "lb" for v in result.violations)
        assert "does not decrease" in str(result.violations[0])

    def test_ordinal_valued_measure(self):
        # A two-phase chain: ω-phase then finite countdown.
        system = ExplicitSystem(
            ("a",), [0], [(0, "a", 1), (1, "a", 2), (2, "a", 3)]
        )
        graph = explore(system)
        values = {0: OMEGA * 2, 1: OMEGA, 2: ordinal(5), 3: ordinal(0)}
        measure = TerminationMeasure(lambda s: values[s], order=ORDINALS)
        assert check_termination_measure(graph, measure).ok

    def test_values_validated(self):
        graph = explore(p1(2))
        measure = TerminationMeasure(lambda s: -1)
        with pytest.raises(NotInDomainError):
            check_termination_measure(graph, measure)


class TestSynthesis:
    def test_acyclic_graph_gets_measure(self):
        graph = explore(p1(6))
        measure = synthesize_floyd(graph)
        assert check_termination_measure(graph, measure).ok

    def test_cyclic_graph_raises_with_lasso(self):
        graph = explore(p2(4))
        with pytest.raises(NotTerminatingError) as info:
            synthesize_floyd(graph)
        lasso = info.value.witness
        assert "lb" in lasso.cycle.commands  # the skip loop keeps P2 alive

    def test_incomplete_graph_rejected(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        with pytest.raises(ValueError):
            synthesize_floyd(explore(up, max_states=4))
