"""Tests for the method-comparison harness."""

import pytest

from repro.baselines import compare_methods
from repro.ts import ExplicitSystem, explore
from repro.workloads import nested_rings, p4_bounded


class TestCompareMethods:
    def test_rows_cover_all_methods(self):
        graph = explore(p4_bounded(2, 6, 3))
        comparison = compare_methods("P4b", graph, scheduler_credit=2)
        rows = list(comparison.rows())
        methods = [row[0] for row in rows]
        assert methods[0] == "stack assertions"
        assert methods[1] == "helpful directions"
        assert "explicit scheduler" in methods[2]

    def test_stack_assertions_use_one_program(self):
        graph = explore(nested_rings(2))
        comparison = compare_methods("rings", graph)
        assert comparison.stack_programs == 1
        assert comparison.stack_states_reasoned == len(graph)

    def test_helpful_directions_cost_more(self):
        graph = explore(nested_rings(3))
        comparison = compare_methods("rings", graph, scheduler_credit=None)
        assert comparison.hd_programs > comparison.stack_programs
        assert comparison.hd_states_reasoned >= comparison.stack_states_reasoned
        assert comparison.scheduler is None

    def test_unsound_synthesis_would_raise(self):
        spin = ExplicitSystem(("go",), [0], [(0, "go", 0)])
        with pytest.raises(Exception):
            compare_methods("spin", explore(spin))
