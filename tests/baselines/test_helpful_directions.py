"""Tests for the helpful-directions baseline."""

import pytest

from repro.baselines import HelpfulDirectionsFailure, helpful_directions_proof
from repro.completeness import synthesize_measure
from repro.ts import ExplicitSystem, explore
from repro.workloads import nested_rings, p2, p4_bounded


class TestProofShape:
    def test_p2_needs_one_derived_program_per_scc(self):
        graph = explore(p2(4))
        proof = helpful_directions_proof(graph)
        assert proof.nesting_depth == 2  # original + one level of regions
        # One derived program per x-value with the lb self-loop.
        assert proof.derived_program_count == 1 + 4

    def test_p4_depth_matches_paper_remark(self):
        graph = explore(p4_bounded(2, 10, 5))
        proof = helpful_directions_proof(graph)
        assert proof.nesting_depth >= 2
        assert proof.derived_program_count >= 3

    def test_nested_rings_depth_tracks_nesting(self):
        for depth in (1, 2, 3):
            graph = explore(nested_rings(depth))
            proof = helpful_directions_proof(graph)
            assert proof.nesting_depth == depth + 2

    def test_depth_equals_synthesised_stack_height(self):
        """The §5 correspondence: helpful directions identify one measure
        level at a time, so nesting depth = stack height (+1 for the root
        ranking = the T level)."""
        for system in (p2(4), p4_bounded(2, 6, 3), nested_rings(3)):
            graph = explore(system)
            proof = helpful_directions_proof(graph)
            synthesis = synthesize_measure(graph)
            assert proof.nesting_depth == synthesis.max_stack_height()

    def test_states_reasoned_exceed_stack_assertion(self):
        graph = explore(nested_rings(3))
        proof = helpful_directions_proof(graph)
        # Derived programs re-visit states once per nesting level.
        assert proof.states_reasoned_about > len(graph)

    def test_ranking_constant_classes_host_children(self):
        graph = explore(p2(3))
        proof = helpful_directions_proof(graph)
        root = proof.root
        assert root.helpful is None
        for child in root.children:
            assert child.helpful == "la"


class TestFailure:
    def test_fairly_live_region_reported(self):
        spin = ExplicitSystem(("go",), [0], [(0, "go", 0)])
        with pytest.raises(HelpfulDirectionsFailure):
            helpful_directions_proof(explore(spin))

    def test_incomplete_graph_rejected(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        with pytest.raises(ValueError):
            helpful_directions_proof(explore(up, max_states=4))
