"""The bench-artifact comparison tool's ``--trajectory`` history mode.

``benchmarks/`` is not a package, so the module is loaded straight from
its file path; the tests drive both the row collection and the CLI.
"""

import importlib.util
import json
import pathlib

import pytest

COMPARE_PY = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "compare.py"
)


@pytest.fixture(scope="module")
def compare():
    spec = importlib.util.spec_from_file_location("bench_compare", COMPARE_PY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def artifact_dir(tmp_path):
    (tmp_path / "BENCH_alpha.json").write_text(json.dumps({
        "experiment": "E98",
        "rows": [
            {"workload": "grid(4,4)", "cold_seconds": 1.25,
             "warm_seconds": 0.05, "peak_rss_kb": 1024, "states": 16},
            {"workload": "rings(3)", "cold_seconds": 0.5, "states": 9},
        ],
    }))
    (tmp_path / "BENCH_beta.json").write_text(json.dumps({
        # no "experiment" key: the file stem is the fallback label
        "rows": [
            {"family": "cube(6,9)", "explore_seconds": 9.75,
             "peak_rss_kb": 2048.0},
        ],
    }))
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    # Valid JSON whose top level is not an object: must be skipped with a
    # warning, never crash row collection (a list has no ``.get``).
    (tmp_path / "BENCH_listy.json").write_text(json.dumps([1, 2, 3]))
    return tmp_path


class TestTrajectoryRows:
    def test_collects_every_timing_column(self, compare, artifact_dir):
        rows = compare.trajectory_rows(artifact_dir)
        assert rows == [
            ("E98", "grid(4,4)", "cold_seconds", 1.25, 1024),
            ("E98", "grid(4,4)", "warm_seconds", 0.05, 1024),
            ("E98", "rings(3)", "cold_seconds", 0.5, None),
            ("beta", "cube(6,9)", "explore_seconds", 9.75, 2048.0),
        ]

    def test_empty_directory_yields_nothing(self, compare, tmp_path):
        assert compare.trajectory_rows(tmp_path) == []

    def test_malformed_artifacts_warn_and_skip(
        self, compare, artifact_dir, capsys
    ):
        rows = compare.trajectory_rows(artifact_dir)
        err = capsys.readouterr().err
        assert "BENCH_broken.json" in err and "skipped" in err
        assert "BENCH_listy.json" in err and "not a JSON object" in err
        # The readable artifacts still contribute every one of their rows.
        assert len(rows) == 4

    def test_all_artifacts_malformed_yields_nothing(
        self, compare, tmp_path, capsys
    ):
        (tmp_path / "BENCH_a.json").write_text("[")
        (tmp_path / "BENCH_b.json").write_text('"just a string"')
        assert compare.trajectory_rows(tmp_path) == []
        err = capsys.readouterr().err
        assert "BENCH_a.json" in err and "BENCH_b.json" in err


class TestTrajectoryCli:
    def test_prints_the_history_table(self, compare, artifact_dir, capsys):
        assert compare.main(["--trajectory", str(artifact_dir)]) == 0
        out = capsys.readouterr().out
        header, *body = [line for line in out.splitlines() if line]
        assert header.split() == [
            "experiment", "family", "column", "seconds", "peak_rss_kb",
        ]
        assert any("E98" in line and "1.250" in line for line in body)
        assert any("beta" in line and "9.750" in line for line in body)
        assert any(line.rstrip().endswith("-") for line in body)  # no-RSS row

    def test_groups_experiments_with_blank_lines(
        self, compare, artifact_dir, capsys
    ):
        compare.main(["--trajectory", str(artifact_dir)])
        out = capsys.readouterr().out
        alpha_block, beta_block = out.strip().split("\n\n")
        assert "E98" in alpha_block and "beta" in beta_block

    def test_empty_directory_is_an_error(self, compare, tmp_path, capsys):
        assert compare.main(["--trajectory", str(tmp_path)]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err
