"""Cross-validation of the whole pipeline.

These tests tie the independent components together: the decision
procedure, the synthesiser, the checker, the Theorem 1 witness extractor,
the Theorem 3 construction, and the simulator must all tell one consistent
story about the same programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    StackAssertion,
    annotate,
    check_fair_termination,
    check_measure,
    explore,
    parse_program,
    synthesize_measure,
    theorem2_quotient,
    unfairness_witness,
)
from repro.completeness import (
    NotFairlyTerminatingError,
    add_history_variable,
    theorem3_construction,
)
from repro.fairness import (
    STRONG_FAIRNESS,
    AdversarialScheduler,
    LeastRecentlyExecutedScheduler,
    simulate,
)
from repro.workloads import (
    dining_philosophers,
    nested_rings,
    p2,
    p2_assertion,
    p4_bounded,
    p4_assertion,
    random_system,
)


class TestMeasureRoutesAgree:
    """Three independent routes to a fair termination measure for the same
    program — the hand annotation, the synthesiser, and the Theorem 2
    quotient — all verify against the same checker."""

    def test_p2_three_routes(self):
        program = p2(4)
        graph = explore(program)
        hand = annotate(program, p2_assertion()).check(graph=graph)
        assert hand.is_fair_termination_measure
        synthesis = synthesize_measure(graph)
        assert check_measure(graph, synthesis.assignment()).ok
        quotient = theorem2_quotient(program, max_depth=12, base_graph=graph)
        assert quotient.verify().ok

    def test_p4_bounded_two_routes(self):
        program = p4_bounded(2, 6, 3)
        graph = explore(program)
        hand = annotate(program, p4_assertion(3)).check(graph=graph)
        assert hand.is_fair_termination_measure
        synthesis = synthesize_measure(graph)
        assert check_measure(graph, synthesis.assignment()).ok


class TestTheoremOneClosesTheLoop:
    def test_witness_from_checker_counterexample_machinery(self):
        """Drive P2 adversarially, build the lasso it traces, and let the
        *measure* explain why that run is unfair — then cross-check with the
        fairness spec."""
        program = p2(4)
        result = simulate(
            program, AdversarialScheduler(avoid={"la"}), max_steps=50
        )
        assert not result.terminated
        # The adversarial run sits on the lb self-loop at its final state.
        from repro.ts import Lasso, Path

        final = result.trace.final_state
        lasso = Lasso(
            stem=Path.singleton(final), cycle=Path((final, final), ("lb",))
        )
        witness = unfairness_witness(program, p2_assertion().compile(), lasso)
        violations = STRONG_FAIRNESS.violations(
            lasso, program.enabled, program.commands()
        )
        assert witness.command in {v.command for v in violations}

    def test_witness_on_synthesised_measure(self):
        system = nested_rings(2)
        graph = explore(system)
        synthesis = synthesize_measure(graph)
        # Spin at b forever: unfair against exit_0.
        from repro.ts import Lasso, Path

        lasso = Lasso(
            stem=Path.singleton("b") if False else _path_to_b(system),
            cycle=Path(("b", "b"), ("spin",)),
        )
        witness = unfairness_witness(system, synthesis.assignment(), lasso)
        assert witness.command == "exit_0"


def _path_to_b(system):
    from repro.ts import Path

    path = Path.singleton("a_2")
    path = path.extend("enter_2", "a_1")
    return path.extend("enter_1", "b")


class TestTheoremThreeOnRealPrograms:
    @pytest.mark.parametrize("depth", [4, 6])
    def test_construction_verifies_on_philosophers(self, depth):
        system = dining_philosophers(2)
        graph = explore(add_history_variable(system), max_depth=depth)
        measure = theorem3_construction(graph)
        assert measure.verify().ok
        assert measure.order.is_well_founded()


class TestDecisionSimulationConsistency:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_fairly_terminating_systems_halt_under_fair_scheduler(self, seed):
        # Round-robin is only weakly fair (an intermittently enabled command
        # can dodge its rotation slot forever — seed 2531 exhibits this), so
        # the decision procedure's verdict is matched against a scheduler
        # that is strongly fair by construction.
        system = random_system(seed, states=8, commands=3, extra_edges=6)
        graph = explore(system)
        if not check_fair_termination(graph).fairly_terminates:
            return
        result = simulate(
            system,
            LeastRecentlyExecutedScheduler(system.commands()),
            max_steps=20_000,
        )
        assert result.terminated

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_synthesis_failure_witness_runs_forever(self, seed):
        system = random_system(seed, states=8, commands=3, extra_edges=6)
        graph = explore(system)
        try:
            synthesize_measure(graph)
        except NotFairlyTerminatingError as error:
            lasso = error.witness.lasso
            # Replay the lasso: every transition must exist in the system.
            for t in list(lasso.stem.transitions()) + list(
                lasso.cycle.transitions()
            ):
                assert (t.command, t.target) in set(system.post(t.source))


class TestUserWorkflow:
    def test_readme_quickstart(self):
        program = parse_program(
            """
            program P2
            var x := 0, y := 10
            do
                 la: x < y -> x := x + 1
              [] lb: x < y -> skip
            od
            """
        )
        proof = annotate(
            program, StackAssertion.parse(["la", "T: max(y - x, 0)"])
        )
        result = proof.check()
        result.raise_if_failed()
        assert result.is_fair_termination_measure
