"""Property tests tying the constructions together over random systems."""

import random as stdlib_random

from hypothesis import given, settings, strategies as st

from repro.completeness import (
    add_history_variable,
    theorem2_quotient,
    theorem3_construction,
)
from repro.fairness import RoundRobinScheduler, simulate
from repro.ts import ExplicitSystem, explore
from repro.workloads import random_system


def random_dag_system(seed, states=8, commands=3, extra_edges=6):
    """A random *acyclic* system: every run terminates, so its computation
    tree is finite and the Theorem 2 quotient is exact."""
    rng = stdlib_random.Random(seed)
    names = tuple(f"c{i}" for i in range(commands))
    transitions = []
    for target in range(1, states):
        source = rng.randrange(target)
        transitions.append((source, rng.choice(names), target))
    for _ in range(extra_edges):
        a, b = rng.randrange(states), rng.randrange(states)
        if a == b:
            continue
        source, target = min(a, b), max(a, b)
        transitions.append((source, rng.choice(names), target))
    return ExplicitSystem(names, [0], transitions)


class TestTheorem3OnRandomSystems:
    """The construction verifies on *every* tree-like unwinding — fair
    termination is only needed for the limit's well-foundedness, not for
    the per-transition conditions."""

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_construction_always_satisfies_conditions(self, seed):
        system = random_system(seed, states=6, commands=3, extra_edges=5)
        graph = explore(add_history_variable(system), max_depth=4)
        measure = theorem3_construction(graph)
        assert measure.verify().ok
        assert measure.order.is_well_founded()  # finite regions are DAGs

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_stack_heights_are_constant(self, seed):
        system = random_system(seed, states=6, commands=4, extra_edges=5)
        graph = explore(add_history_variable(system), max_depth=4)
        measure = theorem3_construction(graph)
        for stack in measure.stacks:
            assert stack.height == 5  # N + 1

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_case_counts_partition_transitions(self, seed):
        system = random_system(seed, states=6, commands=3, extra_edges=5)
        graph = explore(add_history_variable(system), max_depth=4)
        measure = theorem3_construction(graph)
        assert (
            measure.stats.case1_total + measure.stats.case2_total
            == len(graph.transitions)
        )


class TestTheorem2ExactOnDags:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_quotient_exact_and_passing(self, seed):
        system = random_dag_system(seed)
        result = theorem2_quotient(system, max_depth=16)
        assert result.exact  # finite computation tree
        verification = result.verify()
        assert verification.is_fair_termination_measure


class TestSchedulerContract:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_round_robin_starvation_bounded_by_command_count(self, seed):
        system = random_system(seed, states=7, commands=3, extra_edges=6)
        result = simulate(
            system, RoundRobinScheduler(system.commands()), max_steps=300
        )
        # A command continuously enabled is served within one rotation:
        # its starvation span is below the command count whenever it was
        # continuously enabled throughout the span.  The weaker, always-true
        # contract: no command is enabled at every one of the last N steps
        # yet unserved, for N = command count, unless the run ended.
        if not result.terminated:
            for command in system.commands():
                violations = result.trace.suffix_violations(len(system.commands()))
                # suffix_violations window of 3 may legitimately contain a
                # continuously enabled, unserved command only if it will be
                # served next; round-robin guarantees service within one
                # full rotation, so spans never exceed the command count.
                assert result.trace.starvation_span(command) <= 3 * len(
                    system.commands()
                )
