"""Metamorphic fault-injection tests.

Two properties anchor the checker's trustworthiness:

1. **Sensitivity** — corrupting a verified measure is usually caught; the
   checker never crashes on a corrupted one.
2. **Soundness end-to-end** — *whatever* assignment happens to pass the
   checker on a complete graph is a real fair termination measure: the
   Theorem 1 extractor must succeed on every in-SCC infinite computation
   and name a genuinely starved command.  This holds for corrupted-but-
   still-passing mutants just as for synthesised originals.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.completeness import NotFairlyTerminatingError, synthesize_measure
from repro.fairness import STRONG_FAIRNESS
from repro.measures import (
    Hypothesis,
    MeasureContradiction,
    Stack,
    StackAssignment,
    check_measure,
    unfairness_witness,
)
from repro.ts import (
    cycle_through_all,
    decompose,
    explore,
    find_path_indices,
    internal_transitions,
    lasso_from_indices,
)
from repro.wf import NATURALS
from repro.workloads import random_system


def synthesized_table(graph):
    synthesis = synthesize_measure(graph)
    return {
        graph.state_of(i): synthesis.stacks[i] for i in range(len(graph))
    }


def mutate(table, graph, rng):
    """One random corruption of a stack table."""
    states = list(table)
    victim = rng.choice(states)
    stack = table[victim]
    mutated = dict(table)
    kind = rng.randrange(3)
    if kind == 0:
        # Bump a measure value.
        level = rng.randrange(stack.height)
        hypothesis = stack.level(level)
        delta = rng.choice([-1, 1, 5])
        new_value = max(0, (hypothesis.value or 0) + delta)
        mutated[victim] = stack.replace(
            level, Hypothesis(hypothesis.subject, new_value)
        )
    elif kind == 1 and stack.height > 1:
        # Drop the top hypothesis.
        mutated[victim] = Stack(stack.entries[:-1])
    else:
        # Replace the top hypothesis's subject with another command.
        commands = list(graph.system.commands())
        if stack.height > 1:
            level = stack.height - 1
            current = stack.level(level)
            others = [c for c in commands if stack.level_of(c) is None]
            if others:
                mutated[victim] = stack.replace(
                    level, Hypothesis(rng.choice(others), current.value)
                )
    return mutated


def scc_lassos(graph):
    for component in decompose(graph).components:
        if not internal_transitions(graph, component):
            continue
        cycle = cycle_through_all(graph, component)
        stem = find_path_indices(graph, graph.initial_indices, cycle[0].source)
        yield lasso_from_indices(graph, stem, cycle)


class TestFaultInjection:
    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_checker_is_total_and_passing_mutants_stay_sound(
        self, seed, mutation_seed
    ):
        graph = explore(random_system(seed, states=8, commands=3, extra_edges=7))
        try:
            table = synthesized_table(graph)
        except NotFairlyTerminatingError:
            return
        rng = random.Random(mutation_seed)
        mutated = mutate(table, graph, rng)
        assignment = StackAssignment.from_dict(mutated, NATURALS)
        result = check_measure(graph, assignment)  # must not crash
        if not result.ok:
            return
        # A passing mutant is still a measure: Theorem 1 must work on every
        # in-SCC infinite computation and blame a truly starved command.
        for lasso in scc_lassos(graph):
            witness = unfairness_witness(graph.system, assignment, lasso)
            starved = {
                v.command
                for v in STRONG_FAIRNESS.violations(
                    lasso, graph.system.enabled, graph.system.commands()
                )
            }
            assert witness.command in starved

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_t_value_corruption_on_a_chain_is_caught(self, seed):
        """A targeted corruption that must always be detected: reversing
        the T-descent on a transition between different SCC ranks."""
        graph = explore(random_system(seed, states=8, commands=3, extra_edges=7))
        try:
            table = synthesized_table(graph)
        except NotFairlyTerminatingError:
            return
        # Find an inter-rank transition and equalise the T-values across it.
        for t in graph.transitions:
            source = graph.state_of(t.source)
            target = graph.state_of(t.target)
            source_t = table[source].termination_measure()
            target_t = table[target].termination_measure()
            if source_t > target_t and table[source].height == 1:
                broken = dict(table)
                broken[source] = Stack([Hypothesis("T", target_t)])
                assignment = StackAssignment.from_dict(broken, NATURALS)
                result = check_measure(graph, assignment)
                assert not result.ok
                return

    def test_contradiction_raised_on_obviously_bogus_measure(self):
        graph = explore(random_system(3, states=6, commands=2, extra_edges=5))
        constant = Stack([Hypothesis("T", 0)])
        assignment = StackAssignment(lambda s: constant, NATURALS)
        lassos = list(scc_lassos(graph))
        if not lassos:
            pytest.skip("seed produced an acyclic system")
        with pytest.raises(MeasureContradiction):
            unfairness_witness(graph.system, assignment, lassos[0])