"""Tests for the command-line interface."""

import pytest

from repro.cli import main

P2 = """
program P2
var x := 0, y := 4
do
     la: x < y -> x := x + 1
  [] lb: x < y -> skip
od
"""

SPIN = """
program Spin
var x := 0
do
  go: true -> skip
od
"""


@pytest.fixture
def p2_file(tmp_path):
    path = tmp_path / "p2.gcl"
    path.write_text(P2)
    return str(path)


@pytest.fixture
def spin_file(tmp_path):
    path = tmp_path / "spin.gcl"
    path.write_text(SPIN)
    return str(path)


class TestShow:
    def test_round_trips_program(self, p2_file, capsys):
        assert main(["show", p2_file]) == 0
        out = capsys.readouterr().out
        assert "program P2" in out
        assert "la: x < y" in out


class TestExplore:
    def test_reports_counts(self, p2_file, capsys):
        assert main(["explore", p2_file]) == 0
        out = capsys.readouterr().out
        assert "5 states" in out
        assert "terminal states: 1" in out


class TestDecide:
    def test_fairly_terminating_returns_zero(self, p2_file, capsys):
        assert main(["decide", p2_file]) == 0
        assert "fairly terminates" in capsys.readouterr().out

    def test_counterexample_returns_one(self, spin_file, capsys):
        assert main(["decide", spin_file]) == 1
        assert "counterexample" in capsys.readouterr().out

    def test_bounded_note(self, tmp_path, capsys):
        path = tmp_path / "up.gcl"
        path.write_text("program Up var x := 0 do a: true -> x := x + 1 od")
        assert main(["decide", str(path), "--max-states", "10"]) == 0
        assert "explored" in capsys.readouterr().out


class TestDecideStream:
    def test_fairly_terminating_matches_materialized(self, p2_file, capsys):
        assert main(["decide", p2_file, "--stream"]) == 0
        out = capsys.readouterr().out
        assert "fairly terminates" in out
        assert "engine:" in out
        assert "verdict at" in out

    def test_counterexample_returns_one(self, spin_file, capsys):
        assert main(["decide", spin_file, "--stream"]) == 1
        assert "counterexample" in capsys.readouterr().out


class TestCheckStream:
    @pytest.fixture
    def p2_assert_file(self, tmp_path):
        path = tmp_path / "p2.assert"
        path.write_text("la\nT: max(y - x, 0)\n")
        return str(path)

    def test_stream_passes(self, p2_file, p2_assert_file, capsys):
        code = main(
            ["check", p2_file, "--assertion", p2_assert_file, "--stream"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "verdict at" in out

    def test_fail_fast_stops_early(self, p2_file, tmp_path, capsys):
        # Dropping the la hypothesis breaks (V_A) on lb self-loops.
        bad = tmp_path / "bad.assert"
        bad.write_text("T: max(y - x, 0)\n")
        code = main(
            ["check", p2_file, "--assertion", str(bad), "--fail-fast"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "stopped early" in out


class TestSynthesize:
    def test_success(self, p2_file, capsys):
        assert main(["synthesize", p2_file, "--stacks"]) == 0
        out = capsys.readouterr().out
        assert "synthesised and verified" in out
        assert "(la: 0 / T:" in out

    def test_failure_reports_witness(self, spin_file, capsys):
        assert main(["synthesize", spin_file]) == 1
        assert "does not fairly terminate" in capsys.readouterr().out

    def test_incomplete_exploration_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "up.gcl"
        path.write_text("program Up var x := 0 do a: true -> x := x + 1 od")
        assert main(["synthesize", str(path), "--max-states", "5"]) == 2


class TestSimulate:
    def test_fair_run(self, p2_file, capsys):
        assert main(["simulate", p2_file]) == 0
        out = capsys.readouterr().out
        assert "terminated" in out
        assert "la: executed 4 times" in out

    def test_starved_run(self, p2_file, capsys):
        assert main(["simulate", p2_file, "--steps", "50", "--starve", "la"]) == 0
        out = capsys.readouterr().out
        assert "still running" in out
        assert "la: executed 0 times" in out


class TestCompare:
    def test_reports_all_methods(self, p2_file, capsys):
        assert main(["compare", p2_file]) == 0
        out = capsys.readouterr().out
        assert "stack assertions" in out
        assert "helpful directions" in out
        assert "explicit scheduler" in out

    def test_incomplete_exploration_rejected(self, tmp_path):
        path = tmp_path / "up.gcl"
        path.write_text("program Up var x := 0 do a: true -> x := x + 1 od")
        assert main(["compare", str(path), "--max-states", "5"]) == 2


class TestNotions:
    def test_hierarchy_reported(self, p2_file, capsys):
        assert main(["notions", p2_file]) == 0
        out = capsys.readouterr().out
        assert "weak fairness" in out
        assert "strong fairness" in out
        assert "impartiality" in out
        # P2 terminates under all three.
        assert "does NOT terminate" not in out

    def test_spin_fails_all(self, spin_file, capsys):
        assert main(["notions", spin_file]) == 0
        out = capsys.readouterr().out
        assert out.count("does NOT terminate") == 3


class TestResponse:
    def test_holding_property(self, p2_file, capsys):
        # In P2, x == 2 always eventually leads to x == 4 under fairness.
        code = main(
            [
                "response",
                p2_file,
                "--trigger",
                "x == 2",
                "--response",
                "x == 4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "holds under strong fairness" in out
        assert "response measure synthesised and verified" in out

    def test_failing_property(self, spin_file, capsys):
        code = main(
            ["response", spin_file, "--trigger", "true", "--response", "false"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILS" in out
        assert "counterexample" in out


class TestSynthesizeProfile:
    def test_profile_flag(self, p2_file, capsys):
        assert main(["synthesize", p2_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "stack heights" in out
        assert "active on la" in out


class TestTree:
    def test_reports_construction_stats(self, p2_file, capsys):
        assert main(["tree", p2_file, "--max-depth", "5"]) == 0
        out = capsys.readouterr().out
        assert "case 1" in out
        assert "longest chain" in out
        assert "PASS" in out

BOOM = """
program Boom
var x := 0
do
     a: x < 3 -> x := x + 1
  [] b: x == 2 -> x := 5 div (x - 2)
od
"""


class TestEventStream:
    def test_events_out_writes_a_validating_stream(self, p2_file, tmp_path):
        from repro.telemetry.schema import validate_event_stream

        out = tmp_path / "events.ndjson"
        assert main(["decide", p2_file, "--events-out", str(out)]) == 0
        parsed = validate_event_stream(out.read_text())
        names = [event["event"] for event in parsed]
        assert names[0] == "run.start"
        assert names[-1] == "run.end"
        assert "explore.summary" in names
        assert "decide.verdict" in names
        assert "phase.begin" in names and "phase.end" in names
        start = parsed[0]["data"]
        assert start["command"] == "decide"
        assert start["file"] == p2_file
        end = parsed[-1]["data"]
        assert end["exit_code"] == 0
        assert end["crashed"] is False
        assert end["seconds"] >= 0.0

    def test_streaming_decide_emits_stage_events(self, p2_file, tmp_path):
        from repro.telemetry.schema import validate_event_stream

        out = tmp_path / "events.ndjson"
        code = main(["decide", p2_file, "--stream", "--events-out", str(out)])
        assert code == 0
        names = [e["event"] for e in validate_event_stream(out.read_text())]
        assert "stream.stage" in names

    def test_check_emits_a_verify_verdict(self, p2_file, tmp_path):
        from repro.telemetry.schema import validate_event_stream

        assertion = tmp_path / "p2.assert"
        assertion.write_text("la\nT: max(y - x, 0)\n")
        out = tmp_path / "events.ndjson"
        code = main([
            "check", p2_file, "--assertion", str(assertion),
            "--events-out", str(out),
        ])
        assert code == 0
        parsed = validate_event_stream(out.read_text())
        verdicts = [e for e in parsed if e["event"] == "verify.verdict"]
        assert verdicts
        assert verdicts[-1]["data"]["ok"] is True
        assert verdicts[-1]["data"]["violations"] == 0

    def test_run_end_present_even_on_nonzero_exit(self, spin_file, tmp_path):
        from repro.telemetry.schema import validate_event_stream

        out = tmp_path / "events.ndjson"
        assert main(["decide", spin_file, "--events-out", str(out)]) == 1
        parsed = validate_event_stream(out.read_text())
        assert parsed[-1]["event"] == "run.end"
        assert parsed[-1]["data"]["exit_code"] == 1


class TestPostmortem:
    @pytest.fixture
    def boom_file(self, tmp_path):
        path = tmp_path / "boom.gcl"
        path.write_text(BOOM)
        return str(path)

    def test_crash_dumps_a_validating_postmortem(
        self, boom_file, tmp_path, monkeypatch, capsys
    ):
        import json

        from repro.gcl.errors import EvalError
        from repro.telemetry.schema import validate_postmortem

        monkeypatch.chdir(tmp_path)
        with pytest.raises(EvalError, match="division by zero"):
            main(["decide", boom_file])
        err = capsys.readouterr().err
        assert "postmortem written:" in err
        dumps = list(tmp_path.glob("postmortem-*.json"))
        assert len(dumps) == 1
        document = json.loads(dumps[0].read_text())
        validate_postmortem(document)
        assert document["command"] == "decide"
        assert document["error"]["type"] == "EvalError"
        assert "division by zero" in document["error"]["message"]
        assert any(
            "EvalError" in line for line in document["error"]["traceback"]
        )
        # The flight-recorder tail made it into the dump, gap-free, and
        # the run got as far as starting: the crash context is readable.
        seqs = [event["seq"] for event in document["events"]]
        assert seqs and seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert document["events"][0]["event"] == "run.start"

    def test_healthy_runs_write_no_postmortem(
        self, p2_file, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["decide", p2_file]) == 0
        assert list(tmp_path.glob("postmortem-*.json")) == []


class TestExpose:
    def test_expose_serves_during_the_run(self, p2_file, capsys):
        assert main(["decide", p2_file, "--expose", "0"]) == 0
        err = capsys.readouterr().err
        assert "expose: serving /metrics /events /healthz on http://" in err
