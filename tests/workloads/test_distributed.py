"""Tests for the distributed workloads."""

import pytest

from repro.fairness import (
    AdversarialScheduler,
    RoundRobinScheduler,
    check_fair_termination,
    simulate,
)
from repro.ts import explore
from repro.workloads import dining_philosophers, mutual_exclusion, token_ring


class TestDiningPhilosophers:
    def test_fairly_terminates(self):
        for count in (2, 3, 4):
            result = check_fair_termination(explore(dining_philosophers(count)))
            assert result.fairly_terminates, count

    def test_infinite_runs_exist(self):
        from repro.baselines import NotTerminatingError, synthesize_floyd

        with pytest.raises(NotTerminatingError):
            synthesize_floyd(explore(dining_philosophers(3)))

    def test_neighbours_never_eat_together(self):
        count = 4
        graph = explore(dining_philosophers(count))
        for index in range(len(graph)):
            state = graph.state_of(index)
            for i in range(count):
                if state[i] == "E":
                    assert state[(i + 1) % count] != "E"

    def test_everyone_eats_under_fair_scheduling(self):
        system = dining_philosophers(3)
        result = simulate(
            system, RoundRobinScheduler(system.commands()), max_steps=10_000
        )
        assert result.terminated
        final = result.trace.final_state
        assert all(phase == "D" for phase in final)

    def test_adversary_can_starve_a_philosopher(self):
        system = dining_philosophers(3)
        result = simulate(
            system,
            AdversarialScheduler(avoid={"phil0.pick"}, prefer=("phil0.ponder",)),
            max_steps=400,
        )
        assert not result.terminated
        assert result.executed("phil0.pick") == 0

    def test_too_few_philosophers_rejected(self):
        with pytest.raises(ValueError):
            dining_philosophers(1)


class TestMutualExclusion:
    def test_fairly_terminates(self):
        for processes, rounds in ((2, 1), (2, 2), (3, 1)):
            graph = explore(mutual_exclusion(processes, rounds))
            assert check_fair_termination(graph).fairly_terminates

    def test_mutual_exclusion_invariant(self):
        graph = explore(mutual_exclusion(3, 1))
        for index in range(len(graph)):
            state = graph.state_of(index)
            critical = sum(1 for phase in state if phase[0] == "C")
            assert critical <= 1

    def test_fair_run_serves_all_rounds(self):
        system = mutual_exclusion(2, 3)
        result = simulate(
            system, RoundRobinScheduler(system.commands()), max_steps=10_000
        )
        assert result.terminated
        assert result.executed("proc0.enter") == 3
        assert result.executed("proc1.enter") == 3

    def test_too_few_processes_rejected(self):
        with pytest.raises(ValueError):
            mutual_exclusion(1)


class TestRequestServer:
    def test_runs_forever_fairly(self):
        from repro.workloads import request_server

        graph = explore(request_server(2))
        result = check_fair_termination(graph)
        assert not result.fairly_terminates  # request/grant forever is fair

    def test_response_holds(self):
        from repro.response import ResponseProperty, check_fair_response
        from repro.workloads import request_server

        prop = ResponseProperty(
            name="served",
            trigger=lambda s: s == "wait",
            response=lambda s: s == "idle",
        )
        assert check_fair_response(request_server(3), prop).holds

    def test_noise_parameter_grows_state_space(self):
        from repro.workloads import request_server

        small = explore(request_server(1))
        large = explore(request_server(5))
        assert len(large) > len(small)

    def test_noise_validated(self):
        from repro.workloads import request_server

        with pytest.raises(ValueError):
            request_server(0)


class TestProducerConsumer:
    def test_fairly_terminates(self):
        from repro.workloads import producer_consumer

        graph = explore(producer_consumer(3, 2))
        assert check_fair_termination(graph).fairly_terminates

    def test_buffer_never_overflows(self):
        from repro.workloads import producer_consumer

        capacity = 2
        graph = explore(producer_consumer(4, capacity))
        for index in range(len(graph)):
            assert 0 <= graph.state_of(index)[-1] <= capacity

    def test_drain_response_holds(self):
        from repro.response import ResponseProperty, check_fair_response
        from repro.workloads import producer_consumer

        prop = ResponseProperty(
            name="drained",
            trigger=lambda s: s[-1] > 0,
            response=lambda s: s[-1] == 0,
        )
        result = check_fair_response(producer_consumer(3, 2), prop)
        assert result.holds and result.decisive

    def test_synthesised_measure_verifies(self):
        from repro.completeness import synthesize_measure
        from repro.measures import check_measure
        from repro.workloads import producer_consumer

        graph = explore(producer_consumer(3, 2))
        synthesis = synthesize_measure(graph)
        assert check_measure(graph, synthesis.assignment()).ok

    def test_quiescent_state_reached_fairly(self):
        from repro.workloads import producer_consumer

        system = producer_consumer(2, 1)
        result = simulate(
            system, RoundRobinScheduler(system.commands()), max_steps=10_000
        )
        assert result.terminated
        final = result.trace.final_state
        assert final[0] == 0 and final[-1] == 0  # all produced, all consumed

    def test_parameters_validated(self):
        from repro.workloads import producer_consumer

        with pytest.raises(ValueError):
            producer_consumer(0, 1)
        with pytest.raises(ValueError):
            producer_consumer(1, 0)


class TestTokenRing:
    def test_state_count(self):
        graph = explore(token_ring(5))
        assert len(graph) == 6

    def test_fairly_terminates(self):
        assert check_fair_termination(explore(token_ring(6))).fairly_terminates

    def test_per_station_commands(self):
        assert len(token_ring(3).commands()) == 6

    def test_token_reaches_the_end_fairly(self):
        system = token_ring(4)
        result = simulate(system, RoundRobinScheduler(system.commands()))
        assert result.terminated
        assert result.trace.final_state == 4

    def test_needs_a_station(self):
        with pytest.raises(ValueError):
            token_ring(0)
