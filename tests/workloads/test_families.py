"""Tests for the parametric program families."""

import pytest

from repro.fairness import check_fair_termination
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    distractor_loop,
    modulus_chain,
    nested_rings,
    random_system,
)


class TestNestedRings:
    def test_state_count(self):
        graph = explore(nested_rings(3))
        assert len(graph) == 5  # a_3, a_2, a_1, b, t

    def test_fairly_terminates(self):
        for depth in (0, 1, 2, 4):
            result = check_fair_termination(explore(nested_rings(depth)))
            assert result.fairly_terminates, depth

    def test_not_plainly_terminating(self):
        from repro.baselines import NotTerminatingError, synthesize_floyd

        with pytest.raises(NotTerminatingError):
            synthesize_floyd(explore(nested_rings(2)))

    def test_depth_zero_is_spin_with_exit(self):
        graph = explore(nested_rings(0))
        assert len(graph) == 2

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            nested_rings(-1)


class TestCounterGrid:
    def test_state_count(self):
        graph = explore(counter_grid(3, 4))
        assert len(graph) == 4 * 5

    def test_fairly_terminates(self):
        assert check_fair_termination(explore(counter_grid(2, 3))).fairly_terminates

    def test_terminal_state_unique(self):
        graph = explore(counter_grid(2, 2))
        terminals = graph.terminal_indices()
        assert len(terminals) == 1
        assert graph.state_of(terminals[0]).as_dict() == {"u": 0, "v": 0}


class TestDistractorLoop:
    def test_command_count(self):
        assert len(distractor_loop(3, 5).commands()) == 6

    def test_fairly_terminates(self):
        assert check_fair_termination(
            explore(distractor_loop(3, 4))
        ).fairly_terminates

    def test_needs_a_distractor(self):
        with pytest.raises(ValueError):
            distractor_loop(3, 0)


class TestModulusChain:
    def test_fairly_terminates(self):
        for stages in (1, 2):
            result = check_fair_termination(explore(modulus_chain(stages)))
            assert result.fairly_terminates, stages

    def test_stage_count_grows_commands(self):
        assert len(modulus_chain(3).commands()) == 1 + 3 + 1

    def test_needs_a_stage(self):
        with pytest.raises(ValueError):
            modulus_chain(0)


class TestEscapeRing:
    def test_strong_but_not_weak(self):
        from repro.fairness import find_weakly_fair_cycle
        from repro.workloads import escape_ring

        graph = explore(escape_ring(3))
        assert check_fair_termination(graph).fairly_terminates
        assert find_weakly_fair_cycle(graph) is not None

    def test_period_one_is_continuously_enabled(self):
        from repro.fairness import find_weakly_fair_cycle
        from repro.workloads import escape_ring

        # With period 1 the escape is continuously enabled on the self-loop:
        # even weak fairness forbids starving it.
        graph = explore(escape_ring(1))
        assert find_weakly_fair_cycle(graph) is None

    def test_period_validated(self):
        from repro.workloads import escape_ring

        with pytest.raises(ValueError):
            escape_ring(0)


class TestRandomSystem:
    def test_deterministic_in_seed(self):
        a = explore(random_system(5))
        b = explore(random_system(5))
        assert a.states == b.states
        assert a.transitions == b.transitions

    def test_all_states_reachable(self):
        graph = explore(random_system(1, states=15))
        assert len(graph) == 15

    def test_parameters_respected(self):
        system = random_system(2, states=6, commands=4)
        assert len(system.commands()) == 4


class TestGridHypercube:
    def test_state_count(self):
        from repro.workloads import grid_hypercube

        assert len(explore(grid_hypercube(3, 2))) == 27  # (side+1)**dims

    def test_fairly_terminates(self):
        from repro.workloads import grid_hypercube

        verdict = check_fair_termination(explore(grid_hypercube(2, 2)))
        assert verdict.fairly_terminates


class TestDistributedRing:
    def test_state_count(self):
        from repro.workloads import distributed_ring

        # token position x (work+1)^stations while work remains, then the
        # all-drained token keeps circulating: stations * (work+1)**stations
        graph = explore(distributed_ring(2, 3))
        assert len(graph) == 2 * 4 * 4

    def test_runs_forever(self):
        from repro.workloads import distributed_ring

        verdict = check_fair_termination(explore(distributed_ring(2, 2)))
        assert not verdict.fairly_terminates  # the token circulates forever


class TestLargeScalingSuite:
    def test_smoke_families_are_modest(self):
        from repro.workloads import large_scaling_suite

        for name, make in large_scaling_suite("smoke"):
            assert len(explore(make())) < 5000, name

    def test_full_families_declared_million_scale(self):
        from repro.workloads import large_scaling_suite

        names = [name for name, _ in large_scaling_suite("full")]
        assert names[0].startswith("hypercube")  # the gate family leads
        assert len(names) == 3

    def test_unknown_scale_rejected(self):
        from repro.workloads import large_scaling_suite

        with pytest.raises(ValueError):
            large_scaling_suite("enormous")
