"""Tests for the paper's programs as workload builders."""

import pytest

from repro.fairness import check_fair_termination
from repro.ts import explore
from repro.workloads import (
    p1,
    p2,
    p3,
    p3_bounded,
    p4,
    p4_bounded,
)


class TestStructure:
    def test_p1_single_command(self):
        assert p1(5).commands() == ("la",)

    def test_p2_commands(self):
        assert p2(5).commands() == ("la", "lb")

    def test_p3_guard_uses_modulus(self):
        program = p3(2, 10, modulus=5)
        assert program.guard_holds("la", program.state(x=0, y=2, z=10))
        assert not program.guard_holds("la", program.state(x=0, y=2, z=9))

    def test_p4_has_skip_command(self):
        assert p4(2, 10, 5).commands() == ("la", "lb", "lc")


class TestSemantics:
    def test_p1_terminates_outright(self):
        graph = explore(p1(6))
        assert graph.complete
        assert len(graph.terminal_indices()) == 1

    def test_p2_fairly_terminates(self):
        result = check_fair_termination(explore(p2(6)))
        assert result.fairly_terminates and result.decisive

    def test_p3_unbounded_state_space(self):
        graph = explore(p3(2, 10, 5), max_states=200)
        assert not graph.complete  # z escapes downwards

    def test_p3_bounded_is_finite_and_fair_terminating(self):
        graph = explore(p3_bounded(2, 10, 5))
        assert graph.complete
        assert check_fair_termination(graph).fairly_terminates

    def test_p4_bounded_is_finite_and_fair_terminating(self):
        graph = explore(p4_bounded(2, 10, 5))
        assert graph.complete
        assert check_fair_termination(graph).fairly_terminates

    def test_p4_without_fairness_does_not_terminate(self):
        from repro.baselines import NotTerminatingError, synthesize_floyd

        with pytest.raises(NotTerminatingError):
            synthesize_floyd(explore(p4_bounded(2, 10, 5)))

    def test_distance_zero_is_immediately_terminal(self):
        graph = explore(p2(0))
        assert len(graph) == 1
        assert graph.terminal_indices() == [0]
