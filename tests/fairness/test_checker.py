"""Tests for the fair-termination decision (Streett emptiness).

The cross-check against a brute-force lasso enumeration (networkx
``simple_cycles``) is the module's ground-truth anchor.
"""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.fairness import (
    STRONG_FAIRNESS,
    check_fair_termination,
    enumerate_unfair_commands,
    find_fair_cycle,
)
from repro.ts import ExplicitSystem, decompose, explore
from repro.workloads import p2, random_system


def spin():
    return ExplicitSystem(("go",), [0], [(0, "go", 0)])


class TestVerdicts:
    def test_p2_fairly_terminates(self):
        result = check_fair_termination(explore(p2(5)))
        assert result.fairly_terminates
        assert result.decisive
        assert result.witness is None

    def test_spin_does_not(self):
        result = check_fair_termination(explore(spin()))
        assert not result.fairly_terminates
        assert result.decisive
        assert result.witness is not None

    def test_terminating_program_trivially_fair(self):
        chain = ExplicitSystem(("a",), [0], [(0, "a", 1), (1, "a", 2)])
        result = check_fair_termination(explore(chain))
        assert result.fairly_terminates

    def test_bounded_graph_not_decisive_without_witness(self):
        from repro.gcl import parse_program

        up = parse_program("program Up var x := 0 do a: true -> x := x + 1 od")
        result = check_fair_termination(explore(up, max_states=20))
        assert result.fairly_terminates  # no fair cycle in the finite region
        assert not result.decisive

    def test_nested_refinement_needed(self):
        # SCC {0,1,2}: 'leave' is enabled at 0 but not executed inside, so
        # the top-level test fails; removing 0 leaves {1,2}, where every
        # enabled command (step, loop) is executed internally — a fair
        # cycle that only the refinement finds.
        system = ExplicitSystem(
            commands=("step", "leave", "loop"),
            initial=[0],
            transitions=[
                (0, "step", 1),
                (1, "step", 2),
                (2, "step", 0),
                (1, "loop", 2),
                (2, "loop", 1),
                (0, "leave", 3),
            ],
        )
        result = check_fair_termination(explore(system))
        assert not result.fairly_terminates
        # The witness cycle must avoid state 0 (where 'leave' is enabled).
        assert 0 not in result.witness.lasso.cycle_states()

    def test_witness_is_strongly_fair(self):
        result = check_fair_termination(explore(spin()))
        lasso = result.witness.lasso
        system = spin()
        assert STRONG_FAIRNESS.is_fair(lasso, system.enabled, system.commands())

    def test_witness_stem_starts_at_initial(self):
        system = ExplicitSystem(
            commands=("a", "b"),
            initial=[0],
            transitions=[(0, "a", 1), (1, "b", 1)],
        )
        result = check_fair_termination(explore(system))
        assert result.witness.lasso.stem.first == 0


class TestUnfairCommandEnumeration:
    def test_p2_helpful_candidates(self):
        graph = explore(p2(3))
        decomposition = decompose(graph)
        nontrivial = [
            c
            for c in decomposition.components
            if graph.commands_executed_within(c)
        ]
        for component in nontrivial:
            assert enumerate_unfair_commands(graph, component) == frozenset({"la"})


def brute_force_fair_lasso_exists(graph):
    """Ground truth: enumerate simple cycles with networkx and check
    fairness of each (every command enabled at a cycle state must label a
    cycle edge).  Simple cycles suffice: a fair cycle exists iff some SCC
    region (after refinement) tours everything, and if any fair cycle
    exists, some *combination* of simple cycles within an SCC is fair —
    so instead of single simple cycles we check every SCC of every
    refinement level, mirroring the definition directly but with an
    independent SCC library."""
    digraph = nx.MultiDiGraph()
    for t in graph.transitions:
        digraph.add_edge(t.source, t.target, command=t.command)
    # Regions are sets of state indices.
    regions = [set(range(len(graph)))]
    while regions:
        region = regions.pop()
        sub = digraph.subgraph(region)
        for component in nx.strongly_connected_components(sub):
            edges = [
                data["command"]
                for a, b, data in sub.edges(data=True)
                if a in component and b in component
            ]
            if not edges:
                continue
            enabled = set()
            for i in component:
                enabled |= graph.enabled_at(i)
            if enabled <= set(edges):
                return True
            bad = enabled - set(edges)
            survivors = {
                i for i in component if not (graph.enabled_at(i) & bad)
            }
            if survivors:
                regions.append(survivors)
    return False


class TestAgainstBruteForce:
    @settings(deadline=None, max_examples=60)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_checker_matches_networkx_reference(self, seed):
        graph = explore(random_system(seed, states=8, commands=3, extra_edges=8))
        expected = brute_force_fair_lasso_exists(graph)
        result = check_fair_termination(graph)
        assert result.fairly_terminates == (not expected)

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_witness_is_fair_and_reachable(self, seed):
        graph = explore(random_system(seed, states=8, commands=2, extra_edges=6))
        witness = find_fair_cycle(graph)
        if witness is None:
            return
        system = graph.system
        lasso = witness.lasso
        assert STRONG_FAIRNESS.is_fair(lasso, system.enabled, system.commands())
        assert lasso.stem.first in set(system.initial_states())
        # Every lasso transition is a real transition.
        for t in list(lasso.stem.transitions()) + list(lasso.cycle.transitions()):
            assert (t.command, t.target) in set(system.post(t.source))


class TestRefinementScratch:
    """The recycled stamp/Tarjan arrays threaded through the streaming
    decide (DESIGN §6f) must not change a single verdict or witness."""

    def test_scratch_reuse_matches_fresh_across_graphs(self):
        from repro.fairness.checker import (
            RefinementScratch, _refine_components,
        )

        scratch = RefinementScratch()
        for seed in range(12):
            graph = explore(random_system(seed=seed, states=30))
            components = [
                list(component)
                for component in graph.analyses.full_components()
            ]
            fresh = _refine_components(graph, components)
            reused = _refine_components(graph, components, scratch)
            if fresh is None:
                assert reused is None
            else:
                assert reused is not None
                assert reused.region == fresh.region
                assert reused.lasso == fresh.lasso

    def test_scratch_survives_repeated_refinement_of_one_graph(self):
        from repro.fairness.checker import (
            RefinementScratch, _refine_components,
        )

        graph = explore(p2(8))
        components = [
            list(component) for component in graph.analyses.full_components()
        ]
        scratch = RefinementScratch()
        results = [
            _refine_components(graph, components, scratch) for _ in range(5)
        ]
        fresh = _refine_components(graph, components)
        for result in results:
            if fresh is None:
                assert result is None
            else:
                assert result.region == fresh.region
                assert result.lasso == fresh.lasso
