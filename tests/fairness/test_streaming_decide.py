"""The streaming fair-termination decision vs the materialized one.

``check_fair_termination_streaming`` explores in staged budgets and refines
only freshly closed SCCs.  On non-violating systems (run to the same
bounds) its result must equal ``check_fair_termination`` field for field;
on violating systems the verdict must match, the witness must be an
independently validated genuine fair lasso, and for fixed bounds the whole
result must be identical across job counts.  ``find_fair_cycle`` gained
``restrict_to`` validation in the same PR — covered here too.
"""

import pytest

from repro.fairness import (
    check_fair_termination,
    check_fair_termination_streaming,
    find_fair_cycle,
)
from repro.fairness.spec import STRONG_FAIRNESS
from repro.ts import explore
from repro.workloads import (
    counter_grid,
    dining_philosophers,
    distributed_ring,
    hypercube_trap,
    modulus_chain,
    nested_rings,
    p2,
    token_ring,
)

TERMINATING = [
    ("grid", lambda: counter_grid(6, 6)),
    ("chain", lambda: modulus_chain(2, fuel=3)),
    ("rings", lambda: nested_rings(3)),
    ("ring", lambda: token_ring(4)),
    ("philosophers", lambda: dining_philosophers(3)),
    ("p2", p2),
]

VIOLATING = [
    ("distributed", lambda: distributed_ring(3, 2)),
    ("trap", lambda: hypercube_trap(3, 3)),
    ("trap_larger", lambda: hypercube_trap(4, 3)),
]


@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")


class TestNonViolating:
    @pytest.mark.parametrize("name,make", TERMINATING)
    def test_equal_to_materialized(self, name, make):
        materialized = check_fair_termination(explore(make()))
        streaming = check_fair_termination_streaming(make(), first_budget=8)
        assert streaming == materialized
        assert streaming.fairly_terminates and streaming.decisive

    def test_bounded_equal_to_materialized(self):
        system = counter_grid(9, 9)
        materialized = check_fair_termination(explore(system, max_states=40))
        streaming = check_fair_termination_streaming(
            system, max_states=40, first_budget=8
        )
        assert streaming == materialized
        assert not streaming.decisive


class TestViolating:
    @pytest.mark.parametrize("name,make", VIOLATING)
    def test_verdict_and_genuine_witness(self, name, make):
        system = make()
        graph = explore(system)
        materialized = check_fair_termination(graph)
        assert not materialized.fairly_terminates
        streaming = check_fair_termination_streaming(system, first_budget=8)
        assert not streaming.fairly_terminates
        assert streaming.decisive
        witness = streaming.witness
        assert witness is not None
        # The witness is a genuine fair lasso of the system, re-derived
        # from the fairness spec rather than trusted from the search.
        assert not STRONG_FAIRNESS.violations(
            witness.lasso, system.enabled, system.commands()
        )

    @pytest.mark.parametrize("name,make", VIOLATING)
    def test_jobs_parity(self, force_parallel, name, make):
        serial = check_fair_termination_streaming(make(), first_budget=8)
        sharded = check_fair_termination_streaming(
            make(), first_budget=8, n_jobs=4
        )
        assert serial == sharded

    def test_early_exit_explores_less(self):
        system = hypercube_trap(4, 4)  # 627 states, trap at depth 1
        materialized = check_fair_termination(explore(system))
        streaming = check_fair_termination_streaming(system, first_budget=16)
        assert not streaming.fairly_terminates
        assert streaming.states_explored < materialized.states_explored


class TestParameters:
    def test_first_budget_validated(self):
        with pytest.raises(ValueError, match="first_budget"):
            check_fair_termination_streaming(p2(), first_budget=0)

    def test_growth_validated(self):
        with pytest.raises(ValueError, match="growth"):
            check_fair_termination_streaming(p2(), growth=1)


class TestRestrictToValidation:
    def test_duplicates_deduplicated(self):
        graph = explore(distributed_ring(3, 2))
        full = find_fair_cycle(graph)
        assert full is not None
        region = list(range(len(graph)))
        assert find_fair_cycle(graph, restrict_to=region + region) == full

    def test_out_of_range_rejected(self):
        graph = explore(distributed_ring(3, 2))
        with pytest.raises(ValueError, match="out of range"):
            find_fair_cycle(graph, restrict_to=[0, len(graph)])
        with pytest.raises(ValueError, match="out of range"):
            find_fair_cycle(graph, restrict_to=[-1])

    def test_empty_region_finds_nothing(self):
        graph = explore(distributed_ring(3, 2))
        assert find_fair_cycle(graph, restrict_to=[]) is None
