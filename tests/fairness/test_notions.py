"""Tests for the weak-fairness and impartiality deciders, and the
termination hierarchy of the [LPS81] trio."""

from hypothesis import given, settings, strategies as st

from repro.fairness import (
    IMPARTIALITY,
    WEAK_FAIRNESS,
    check_fair_termination,
    find_fair_cycle,
    find_impartial_cycle,
    find_weakly_fair_cycle,
)
from repro.ts import ExplicitSystem, explore
from repro.workloads import p2, p3_bounded, random_system


class TestWeaklyFairCycles:
    def test_p2_has_no_weakly_fair_cycle(self):
        # la is continuously enabled on the skip loop, never executed.
        assert find_weakly_fair_cycle(explore(p2(4))) is None

    def test_strong_but_not_weak_discriminator(self):
        """The P3 phenomenon (§3.3), distilled: a command enabled only
        *intermittently* along a cycle.  Strong fairness forbids starving
        it (enabled infinitely often), so the system strongly-fairly
        terminates; weak fairness tolerates it (never continuously
        enabled), so a weakly fair infinite run exists."""
        ring = ExplicitSystem(
            commands=("la", "lb"),
            initial=[0],
            transitions=[
                (0, "lb", 1),
                (1, "lb", 2),
                (2, "lb", 0),
                (0, "la", 3),
            ],
        )
        ring_graph = explore(ring)
        assert check_fair_termination(ring_graph).fairly_terminates
        ring_witness = find_weakly_fair_cycle(ring_graph)
        assert ring_witness is not None
        lasso = ring_witness.lasso
        assert WEAK_FAIRNESS.is_fair(lasso, ring.enabled, ring.commands())

    def test_p3_bounded_is_acyclic_hence_weakly_terminating_too(self):
        # The bounded P3 has no cycles at all (z strictly falls, x rises),
        # so even weak-fair termination holds vacuously there.
        graph = explore(p3_bounded(2, 7, 3))
        assert check_fair_termination(graph).fairly_terminates
        assert find_weakly_fair_cycle(graph) is None

    def test_weakly_fair_witness_is_weakly_fair(self):
        system = ExplicitSystem(
            commands=("a", "b"),
            initial=[0],
            transitions=[(0, "a", 1), (1, "b", 0)],
        )
        graph = explore(system)
        witness = find_weakly_fair_cycle(graph)
        assert witness is not None
        assert WEAK_FAIRNESS.is_fair(
            witness.lasso, system.enabled, system.commands()
        )

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_witnesses_check_out_on_random_systems(self, seed):
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        graph = explore(system)
        witness = find_weakly_fair_cycle(graph)
        if witness is not None:
            assert WEAK_FAIRNESS.is_fair(
                witness.lasso, system.enabled, system.commands()
            )


class TestImpartialCycles:
    def test_needs_all_commands_in_one_scc(self):
        system = ExplicitSystem(
            commands=("a", "b"),
            initial=[0],
            transitions=[(0, "a", 1), (1, "b", 0)],
        )
        witness = find_impartial_cycle(explore(system))
        assert witness is not None
        assert set(witness.lasso.cycle.commands) == {"a", "b"}

    def test_missing_command_blocks_impartiality(self):
        system = ExplicitSystem(
            commands=("a", "b"),
            initial=[0],
            transitions=[(0, "a", 0), (0, "b", 1)],
        )
        # The only cycle executes a alone; b is executed once, finitely.
        assert find_impartial_cycle(explore(system)) is None

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_witnesses_are_impartial(self, seed):
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        graph = explore(system)
        witness = find_impartial_cycle(graph)
        if witness is not None:
            assert IMPARTIALITY.is_fair(
                witness.lasso, system.enabled, system.commands()
            )


class TestTerminationHierarchy:
    """weak-fair termination ⟹ strong-fair termination ⟹ impartial
    termination (more fair runs ⟹ harder to terminate fairly)."""

    @settings(deadline=None, max_examples=60)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_hierarchy_on_random_systems(self, seed):
        graph = explore(random_system(seed, states=9, commands=3, extra_edges=8))
        weak_term = find_weakly_fair_cycle(graph) is None
        strong_term = find_fair_cycle(graph) is None
        impartial_term = find_impartial_cycle(graph) is None
        if weak_term:
            assert strong_term
        if strong_term:
            assert impartial_term

    @settings(deadline=None, max_examples=60)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_cycle_inclusions(self, seed):
        """Dually, on witnesses: an impartial cycle is strongly fair, and a
        strongly fair cycle is weakly fair."""
        system = random_system(seed, states=8, commands=3, extra_edges=7)
        graph = explore(system)
        impartial = find_impartial_cycle(graph)
        if impartial is not None:
            from repro.fairness import STRONG_FAIRNESS

            assert STRONG_FAIRNESS.is_fair(
                impartial.lasso, system.enabled, system.commands()
            )
        strong = find_fair_cycle(graph)
        if strong is not None:
            assert WEAK_FAIRNESS.is_fair(
                strong.lasso, system.enabled, system.commands()
            )
