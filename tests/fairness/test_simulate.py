"""Tests for the simulator."""

import pytest

from repro.fairness import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    simulate,
)
from repro.workloads import p2, p4


class TestSimulate:
    def test_fair_scheduler_terminates_p2(self):
        program = p2(20)
        result = simulate(program, RoundRobinScheduler(program.commands()))
        assert result.terminated
        assert result.executed("la") == 20

    def test_random_scheduler_terminates_p2(self):
        program = p2(10)
        result = simulate(program, RandomScheduler(seed=5), max_steps=100_000)
        assert result.terminated

    def test_adversarial_scheduler_starves(self):
        program = p2(10)
        result = simulate(
            program, AdversarialScheduler(avoid={"la"}), max_steps=500
        )
        assert not result.terminated
        assert result.executed("la") == 0
        assert result.trace.starvation_span("la") == 500
        assert result.trace.suffix_violations(500) == ["la"]

    def test_round_robin_terminates_p4(self):
        program = p4(distance=2, z0=10, modulus=3)
        result = simulate(
            program, RoundRobinScheduler(program.commands()), max_steps=10_000
        )
        assert result.terminated

    def test_scripted_run(self):
        program = p2(2)
        result = simulate(
            program, ScriptedScheduler(["lb", "la", "la"]), max_steps=10
        )
        assert result.terminated
        assert result.steps == 3

    def test_explicit_initial_state(self):
        program = p2(5)
        start = program.state(x=4, y=5)
        result = simulate(
            program, RoundRobinScheduler(program.commands()), initial=start
        )
        assert result.steps <= 2

    def test_step_budget_respected(self):
        program = p2(10_000)
        result = simulate(
            program, RoundRobinScheduler(program.commands()), max_steps=10
        )
        assert not result.terminated
        assert result.steps == 10

    def test_nondeterministic_successors_seeded(self):
        from repro.gcl import parse_program

        program = parse_program(
            "program N var x := 0 do a: x == 0 -> choose x in 1 .. 9 od"
        )
        scheduler = RoundRobinScheduler(program.commands())
        a = simulate(program, scheduler, successor_seed=1)
        b = simulate(program, scheduler, successor_seed=1)
        assert a.trace.states() == b.trace.states()
