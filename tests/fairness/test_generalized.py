"""Tests for generalized fairness ([FK84]): requirements, the decision,
and its relationships to per-command strong fairness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fairness import (
    STRONG_FAIRNESS,
    check_fair_termination,
    check_general_fair_termination,
    command_requirements,
    find_generally_fair_cycle,
    group_requirement,
    is_generally_fair,
    predicate_requirement,
    requirement_violations,
)
from repro.ts import ExplicitSystem, Lasso, Path, explore
from repro.workloads import p2, random_system


def two_step_ring():
    """0 -g1-> 1 -g2-> 0, with stop at 0: the group-fairness discriminator."""
    return ExplicitSystem(
        commands=("g1", "g2", "stop"),
        initial=[0],
        transitions=[(0, "g1", 1), (1, "g2", 0), (0, "stop", 2)],
    )


class TestRequirementConstruction:
    def test_command_requirements_match_strong_fairness(self):
        program = p2(3)
        requirements = command_requirements(program)
        assert [r.name for r in requirements] == ["la", "lb"]
        start = next(iter(program.initial_states()))
        assert requirements[0].enabled_at(start)
        assert requirements[0].fulfilled_by(start, "la", start)
        assert not requirements[0].fulfilled_by(start, "lb", start)

    def test_group_requirement_unions_members(self):
        system = two_step_ring()
        group = group_requirement(system, "move", ["g1", "g2"])
        assert group.enabled_at(0)
        assert group.enabled_at(1)
        assert not group.enabled_at(2)
        assert group.fulfilled_by(0, "g1", 1)
        assert not group.fulfilled_by(0, "stop", 2)

    def test_group_unknown_member_rejected(self):
        with pytest.raises(ValueError):
            group_requirement(two_step_ring(), "bad", ["zz"])

    def test_predicate_requirement_freeform(self):
        requirement = predicate_requirement(
            "even-serviced",
            demands=lambda s: s % 2 == 0,
            serves=lambda s, c, t: s % 2 == 0 and c == "g1",
        )
        assert requirement.enabled_at(0)
        assert not requirement.enabled_at(1)


class TestLassoLevel:
    def cycle_lasso(self):
        return Lasso(
            stem=Path.singleton(0),
            cycle=Path((0, 1, 0), ("g1", "g2")),
        )

    def test_violations_name_starved_requirements(self):
        system = two_step_ring()
        violations = requirement_violations(
            self.cycle_lasso(), command_requirements(system)
        )
        assert [v.requirement.name for v in violations] == ["stop"]
        assert v0_states(violations) == (0,)

    def test_group_fairness_tolerates_member_starvation(self):
        system = two_step_ring()
        # A lasso executing only g1 via a self-loop does not exist here;
        # instead check the cycle lasso against {move, stop} requirements.
        requirements = (
            group_requirement(system, "move", ["g1", "g2"]),
            command_requirements(system)[2],  # stop
        )
        violations = requirement_violations(self.cycle_lasso(), requirements)
        assert [v.requirement.name for v in violations] == ["stop"]

    def test_is_generally_fair(self):
        system = two_step_ring()
        move_only = (group_requirement(system, "move", ["g1", "g2"]),)
        assert is_generally_fair(self.cycle_lasso(), move_only)


def v0_states(violations):
    return violations[0].enabled_at


class TestDecision:
    def test_command_instance_matches_strong_checker(self):
        for seed in range(25):
            graph = explore(random_system(seed, states=8, commands=3))
            strong = check_fair_termination(graph).fairly_terminates
            general, witness = check_general_fair_termination(
                graph, command_requirements(graph.system)
            )
            assert general == strong, seed
            if witness is not None:
                # The witness must be strongly fair — the two formulations
                # coincide on command requirements.
                assert STRONG_FAIRNESS.is_fair(
                    witness.lasso, graph.system.enabled, graph.system.commands()
                )

    def test_discriminator_ring(self):
        """The ring fairly terminates under per-command fairness (the cycle
        starves `stop`) — and also under {move, stop} group fairness (the
        cycle still starves `stop`); but dropping the stop requirement
        leaves the cycle fair."""
        system = two_step_ring()
        graph = explore(system)
        assert check_fair_termination(graph).fairly_terminates

        move = group_requirement(system, "move", ["g1", "g2"])
        stop_req = command_requirements(system)[2]
        terminates, _ = check_general_fair_termination(graph, (move, stop_req))
        assert terminates

        terminates, witness = check_general_fair_termination(graph, (move,))
        assert not terminates
        assert witness is not None
        assert set(witness.lasso.cycle.commands) == {"g1", "g2"}

    def test_witness_is_generally_fair(self):
        system = two_step_ring()
        graph = explore(system)
        move = group_requirement(system, "move", ["g1", "g2"])
        witness = find_generally_fair_cycle(graph, (move,))
        assert is_generally_fair(witness.lasso, (move,))

    def test_empty_requirements_everything_fair(self):
        graph = explore(two_step_ring())
        terminates, witness = check_general_fair_termination(graph, ())
        assert not terminates  # any cycle is vacuously fair
        assert witness is not None

    def test_predicate_fairness_refinement(self):
        # Requirement demanded only at state 1, fulfilled only by g2 taken
        # from state 1: the ring's cycle fulfils it; removing stop-pressure
        # the cycle is fair; with it, unfair.
        system = two_step_ring()
        graph = explore(system)
        pred = predicate_requirement(
            "one-serviced",
            demands=lambda s: s == 1,
            serves=lambda s, c, t: s == 1 and c == "g2",
        )
        terminates, _ = check_general_fair_termination(graph, (pred,))
        assert not terminates  # the cycle services it

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_command_instance_agrees_on_random_systems(self, seed):
        graph = explore(random_system(seed, states=9, commands=3, extra_edges=8))
        strong = check_fair_termination(graph).fairly_terminates
        general, _ = check_general_fair_termination(
            graph, command_requirements(graph.system)
        )
        assert general == strong
