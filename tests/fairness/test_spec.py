"""Tests for the three fairness notions on lassos."""

from repro.fairness import IMPARTIALITY, STRONG_FAIRNESS, WEAK_FAIRNESS
from repro.ts import Lasso, Path

COMMANDS = ("a", "b")


def lasso(cycle_states, cycle_commands, stem_states=None, stem_commands=()):
    if stem_states is None:
        stem_states = (cycle_states[0],)
    return Lasso(
        stem=Path(tuple(stem_states), tuple(stem_commands)),
        cycle=Path(tuple(cycle_states), tuple(cycle_commands)),
    )


def enabled_table(table):
    return lambda state: frozenset(table[state])


class TestStrongFairness:
    def test_fair_when_everything_executed(self):
        run = lasso((0, 1, 0), ("a", "b"))
        enabled = enabled_table({0: {"a"}, 1: {"b"}})
        assert STRONG_FAIRNESS.is_fair(run, enabled, COMMANDS)

    def test_unfair_when_enabled_never_executed(self):
        run = lasso((0, 0), ("b",))
        enabled = enabled_table({0: {"a", "b"}})
        violations = STRONG_FAIRNESS.violations(run, enabled, COMMANDS)
        assert [v.command for v in violations] == ["a"]
        assert violations[0].enabled_at == (0,)

    def test_fair_when_starved_command_never_enabled_on_cycle(self):
        run = lasso((0, 0), ("b",))
        enabled = enabled_table({0: {"b"}})
        assert STRONG_FAIRNESS.is_fair(run, enabled, COMMANDS)

    def test_enabled_once_on_cycle_counts_as_infinitely_often(self):
        run = lasso((0, 1, 0), ("b", "b"))
        enabled = enabled_table({0: {"a", "b"}, 1: {"b"}})
        assert not STRONG_FAIRNESS.is_fair(run, enabled, COMMANDS)


class TestWeakFairness:
    def test_intermittent_enabledness_is_just(self):
        # 'a' enabled at 0 only — not continuously — so justice tolerates
        # starving it while strong fairness does not.
        run = lasso((0, 1, 0), ("b", "b"))
        enabled = enabled_table({0: {"a", "b"}, 1: {"b"}})
        assert WEAK_FAIRNESS.is_fair(run, enabled, COMMANDS)
        assert not STRONG_FAIRNESS.is_fair(run, enabled, COMMANDS)

    def test_continuous_enabledness_must_be_served(self):
        run = lasso((0, 1, 0), ("b", "b"))
        enabled = enabled_table({0: {"a", "b"}, 1: {"a", "b"}})
        violations = WEAK_FAIRNESS.violations(run, enabled, COMMANDS)
        assert [v.command for v in violations] == ["a"]


class TestImpartiality:
    def test_requires_every_command(self):
        run = lasso((0, 0), ("b",))
        enabled = enabled_table({0: {"b"}})
        violations = IMPARTIALITY.violations(run, enabled, COMMANDS)
        assert [v.command for v in violations] == ["a"]

    def test_hierarchy(self):
        # Impartial ⊆ strongly fair ⊆ weakly fair (on any fixed lasso).
        run = lasso((0, 1, 0), ("a", "b"))
        enabled = enabled_table({0: {"a", "b"}, 1: {"a", "b"}})
        assert IMPARTIALITY.is_fair(run, enabled, COMMANDS)
        assert STRONG_FAIRNESS.is_fair(run, enabled, COMMANDS)
        assert WEAK_FAIRNESS.is_fair(run, enabled, COMMANDS)
