"""Tests for schedulers."""

import pytest

from repro.fairness import (
    AdversarialScheduler,
    LeastRecentlyExecutedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)


class TestRoundRobin:
    def test_rotates_through_enabled(self):
        scheduler = RoundRobinScheduler(("a", "b", "c"))
        choices = [scheduler.choose(None, ("a", "b", "c")) for _ in range(6)]
        assert choices == ["a", "b", "c", "a", "b", "c"]

    def test_skips_disabled(self):
        scheduler = RoundRobinScheduler(("a", "b", "c"))
        assert scheduler.choose(None, ("b",)) == "b"
        assert scheduler.choose(None, ("a", "c")) == "c"

    def test_bounded_starvation(self):
        # A command continuously enabled is chosen within one full rotation.
        scheduler = RoundRobinScheduler(("a", "b", "c"))
        waited = 0
        for _ in range(20):
            if scheduler.choose(None, ("a", "b", "c")) == "b":
                break
            waited += 1
        assert waited < 3

    def test_no_enabled_raises(self):
        scheduler = RoundRobinScheduler(("a",))
        with pytest.raises(ValueError):
            scheduler.choose(None, ())

    def test_reset(self):
        scheduler = RoundRobinScheduler(("a", "b"))
        scheduler.choose(None, ("a", "b"))
        scheduler.reset()
        assert scheduler.choose(None, ("a", "b")) == "a"

    def test_empty_command_list_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(())


class TestLeastRecentlyExecuted:
    def test_fresh_scheduler_sweeps_in_declaration_order(self):
        scheduler = LeastRecentlyExecutedScheduler(("a", "b", "c"))
        choices = [scheduler.choose(None, ("a", "b", "c")) for _ in range(6)]
        assert choices == ["a", "b", "c", "a", "b", "c"]

    def test_oldest_enabled_command_wins(self):
        scheduler = LeastRecentlyExecutedScheduler(("a", "b", "c"))
        assert scheduler.choose(None, ("b", "c")) == "b"
        assert scheduler.choose(None, ("b", "c")) == "c"
        # "a" has never executed, so it is oldest the moment it is enabled.
        assert scheduler.choose(None, ("a", "b", "c")) == "a"

    def test_intermittently_enabled_command_not_starved(self):
        # The round-robin counterexample: "c" is enabled only every third
        # step, exactly when the rotation pointer is elsewhere.  Under LRE,
        # "c" grows oldest and is chosen whenever it reappears.
        scheduler = LeastRecentlyExecutedScheduler(("a", "b", "c"))
        executions = {"a": 0, "b": 0, "c": 0}
        for step in range(30):
            enabled = ("a", "b", "c") if step % 3 == 0 else ("a", "b")
            executions[scheduler.choose(None, enabled)] += 1
        assert executions["c"] > 0

    def test_no_enabled_raises(self):
        scheduler = LeastRecentlyExecutedScheduler(("a",))
        with pytest.raises(ValueError):
            scheduler.choose(None, ())

    def test_reset(self):
        scheduler = LeastRecentlyExecutedScheduler(("a", "b"))
        scheduler.choose(None, ("a", "b"))
        scheduler.reset()
        assert scheduler.choose(None, ("a", "b")) == "a"

    def test_empty_command_list_rejected(self):
        with pytest.raises(ValueError):
            LeastRecentlyExecutedScheduler(())

    def test_round_robin_counterexample_terminates(self):
        # Regression for the seed-2531 random system: fairly terminating per
        # the decision procedure, yet round-robin runs forever because one
        # command is enabled only when the pointer has just passed it.  A
        # strongly fair scheduler must drive it to termination.
        from repro.fairness import simulate
        from repro.workloads import random_system

        system = random_system(2531, states=8, commands=3, extra_edges=6)
        scheduler = LeastRecentlyExecutedScheduler(system.commands())
        result = simulate(system, scheduler, max_steps=20_000)
        assert result.terminated


class TestRandomScheduler:
    def test_deterministic_given_seed(self):
        a = RandomScheduler(seed=7)
        b = RandomScheduler(seed=7)
        enabled = ("a", "b", "c")
        assert [a.choose(None, enabled) for _ in range(10)] == [
            b.choose(None, enabled) for _ in range(10)
        ]

    def test_reset_replays(self):
        scheduler = RandomScheduler(seed=3)
        first = [scheduler.choose(None, ("a", "b")) for _ in range(5)]
        scheduler.reset()
        assert [scheduler.choose(None, ("a", "b")) for _ in range(5)] == first

    def test_eventually_chooses_everything(self):
        scheduler = RandomScheduler(seed=0)
        seen = {scheduler.choose(None, ("a", "b", "c")) for _ in range(100)}
        assert seen == {"a", "b", "c"}


class TestAdversarialScheduler:
    def test_starves_avoided_command(self):
        scheduler = AdversarialScheduler(avoid={"a"})
        assert scheduler.choose(None, ("a", "b")) == "b"

    def test_executes_avoided_only_when_forced(self):
        scheduler = AdversarialScheduler(avoid={"a"})
        assert scheduler.choose(None, ("a",)) == "a"

    def test_preference_order(self):
        scheduler = AdversarialScheduler(avoid={"a"}, prefer=("c",))
        assert scheduler.choose(None, ("a", "b", "c")) == "c"


class TestScriptedScheduler:
    def test_replays_script(self):
        scheduler = ScriptedScheduler(["a", "b"])
        assert scheduler.choose(None, ("a", "b")) == "a"
        assert scheduler.choose(None, ("a", "b")) == "b"

    def test_exhaustion_raises(self):
        scheduler = ScriptedScheduler(["a"])
        scheduler.choose(None, ("a",))
        with pytest.raises(ValueError):
            scheduler.choose(None, ("a",))

    def test_disabled_choice_raises(self):
        scheduler = ScriptedScheduler(["a"])
        with pytest.raises(ValueError):
            scheduler.choose(None, ("b",))

    def test_reset_rewinds(self):
        scheduler = ScriptedScheduler(["a"])
        scheduler.choose(None, ("a",))
        scheduler.reset()
        assert scheduler.choose(None, ("a",)) == "a"
